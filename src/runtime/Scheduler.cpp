#include "runtime/Scheduler.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "common/Logging.h"
#include "digital/KernelCache.h"

namespace darth
{
namespace runtime
{

namespace
{

/** doneCycle_ sentinel for a submitted-but-unexecuted request. */
constexpr Cycle kPendingDone = ~Cycle{0};

} // namespace

Scheduler::Scheduler(Chip &chip)
    : chip_(chip), kernels_(chip.config().hct),
      busyUntil_(chip.numHcts(), 0), nextIssue_(chip.numHcts(), 0),
      lastUid_(chip.numHcts(), 0)
{
}

MvmFuture
Scheduler::submit(const PlacedMatrix &pm, std::vector<i64> x,
                  int input_bits, Cycle earliest)
{
    return submit(pm, std::move(x), input_bits, earliest, {});
}

MvmFuture
Scheduler::submit(const PlacedMatrix &pm, std::vector<i64> x,
                  int input_bits, Cycle earliest,
                  const std::vector<MvmFuture> &after)
{
    SeqLock lock(mu_);
    if (!pm.analogEnabled)
        darth_fatal("Scheduler::submit: analog mode is disabled for "
                    "matrix handle ", pm.id);
    if (x.size() != pm.plan.rows)
        throw std::invalid_argument(
            "Scheduler::submit: MVM input has " +
            std::to_string(x.size()) + " elements but matrix handle " +
            std::to_string(pm.id) + " is planned as " +
            std::to_string(pm.plan.rows) + " rows x " +
            std::to_string(pm.plan.cols) +
            " cols (inputs must have one element per row)");
    if (input_bits <= 0)
        throw std::invalid_argument(
            "Scheduler::submit: input_bits must be positive, got " +
            std::to_string(input_bits));

    // Validate dependencies before allocating the id: a throw here
    // must leave ids and the doneCycle_ index in lockstep.
    for (const MvmFuture &dep : after)
        if (!dep.valid() || dep.owner_ != this ||
            dep.id() >= nextId_)
            throw std::invalid_argument(
                "Scheduler::submit: `after` future is invalid, from "
                "another scheduler, or was never submitted");

    Request req;
    req.id = nextId_++;
    req.pm = &pm;
    req.x = std::move(x);
    req.inputBits = input_bits;
    req.earliest = earliest;
    req.session = pm.session;
    req.oracleCost = oracleCostLocked(pm.plan, input_bits);
    req.deps.reserve(after.size());
    for (const MvmFuture &dep : after)
        req.deps.push_back(dep.id());
    doneCycle_.push_back(kPendingDone);
    backlog_ += req.oracleCost;
    queue_.push_back(std::move(req));
    return MvmFuture(queue_.back().id, this);
}

Cycle
Scheduler::oracleCost(const MatrixPlan &plan, int input_bits)
{
    SeqLock lock(mu_);
    return oracleCostLocked(plan, input_bits);
}

Cycle
Scheduler::oracleCostLocked(const MatrixPlan &plan, int input_bits)
{
    Cycle worst = 0;
    for (const auto &part : plan.parts) {
        MvmShape shape;
        shape.rows = part.numRows;
        shape.cols = part.numCols;
        shape.elementBits = plan.elementBits;
        shape.bitsPerCell = plan.bitsPerCell;
        shape.inputBits = input_bits;
        worst = std::max(worst, kernels_.mvm(shape).latency);
    }
    return worst;
}

bool
Scheduler::depsReady(const Request &req) const
{
    for (RequestId dep : req.deps)
        if (doneCycle_[dep - 1] == kPendingDone)
            return false;
    return true;
}

Cycle
Scheduler::depBound(const Request &req) const
{
    Cycle bound = 0;
    for (RequestId dep : req.deps)
        bound = std::max(bound, doneCycle_[dep - 1]);
    return bound;
}

Cycle
Scheduler::tileReady(std::size_t hct, const PlacedMatrix &pm) const
{
    // A tile streaming MVMs of one placement accepts the next issue
    // one amortized period after the previous start; anything else
    // waits for the tile to finish outright.
    return lastUid_[hct] == pm.uid ? nextIssue_[hct]
                                   : busyUntil_[hct];
}

Cycle
Scheduler::achievableStart(const Request &req) const
{
    Cycle start = std::max(req.earliest, depBound(req));
    for (const auto &part : req.pm->plan.parts)
        start = std::max(start, tileReady(part.hctIndex, *req.pm));
    return start;
}

std::size_t
Scheduler::pickNext() const
{
    if (dequeueHook_) {
        std::vector<QueuedRequest> view;
        view.reserve(queue_.size());
        for (const auto &req : queue_) {
            QueuedRequest q;
            q.id = req.id;
            q.session = req.session;
            q.handle = req.pm->id;
            q.earliest = req.earliest;
            q.ready = depsReady(req);
            // Not-ready requests sort to the back of any start-time
            // ordering a hook applies (picking one anyway falls back
            // to the greedy order below).
            q.achievableStart =
                q.ready ? achievableStart(req) : ~Cycle{0};
            q.oracleCost = req.oracleCost;
            view.push_back(q);
        }
        const std::size_t picked = dequeueHook_(view);
        if (picked < queue_.size() && view[picked].ready)
            return picked;
        // Out-of-range or not-ready pick: fall through to the greedy
        // default (the oldest queued request is always ready, since
        // its dependencies are strictly older and out of the queue).
    }
    std::size_t best = queue_.size();
    Cycle best_start = 0;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (!depsReady(queue_[i]))
            continue;
        const Cycle start = achievableStart(queue_[i]);
        // Strictly-less keeps submission order as the tiebreak.
        if (best == queue_.size() || start < best_start) {
            best = i;
            best_start = start;
        }
    }
    if (best == queue_.size())
        darth_panic("Scheduler::pickNext: no dependency-ready request "
                    "in a non-empty queue (dependency cycle?)");
    return best;
}

void
Scheduler::setDequeueHook(DequeueHook hook)
{
    SeqLock lock(mu_);
    dequeueHook_ = std::move(hook);
}

DequeueHook
Scheduler::submissionOrderHook()
{
    return [](const std::vector<QueuedRequest> &queue) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < queue.size(); ++i)
            if (queue[i].id < queue[best].id)
                best = i;
        return best;
    };
}

SchedulerCounters
Scheduler::counters() const
{
    SchedulerCounters snapshot;
    {
        SeqLock lock(mu_);
        snapshot = counters_;
    }
    // The compiled-kernel cache is process-wide (every chip's
    // pipelines share it), so the audit fields are read from the
    // cache singleton, outside this scheduler's lock.
    snapshot.kernelCacheHits = digital::KernelCache::instance().hits();
    snapshot.kernelCacheMisses =
        digital::KernelCache::instance().misses();
    return snapshot;
}

std::size_t
Scheduler::pendingRequests(u64 session) const
{
    SeqLock lock(mu_);
    std::size_t count = 0;
    for (const auto &req : queue_)
        count += req.session == session;
    return count;
}

void
Scheduler::executeAt(std::size_t index)
{
    Request req = std::move(queue_[index]);
    queue_.erase(queue_.begin() +
                 static_cast<std::ptrdiff_t>(index));
    backlog_ -= std::min(backlog_, req.oracleCost);

    const MatrixPlan &plan = req.pm->plan;
    MvmResult result;
    result.values.assign(plan.cols, 0);

    // Dependencies completed (pickNext only offers ready requests);
    // their done cycles harden the earliest bound.
    const Cycle dep_bound = depBound(req);
    const Cycle earliest = std::max(req.earliest, dep_bound);
    // A dependency stall is a start pushed later than both the
    // submit-time earliest and what the tiles alone would allow.
    if (!req.deps.empty()) {
        Cycle tile_bound = req.earliest;
        for (const auto &part : plan.parts)
            tile_bound = std::max(
                tile_bound, tileReady(part.hctIndex, *req.pm));
        if (dep_bound > tile_bound)
            ++counters_.dependencyStalls;
    }

    bool first = true;
    bool pipelined = false;
    Cycle done = earliest;
    for (const auto &part : plan.parts) {
        std::vector<i64> sub_x(
            req.x.begin() + static_cast<std::ptrdiff_t>(part.row0),
            req.x.begin() +
                static_cast<std::ptrdiff_t>(part.row0 + part.numRows));
        const Cycle prev_busy = busyUntil_[part.hctIndex];
        const Cycle start = std::max(
            earliest, tileReady(part.hctIndex, *req.pm));
        auto part_result = chip_.hct(part.hctIndex)
                               .execMvm(sub_x, req.inputBits, start);
        for (std::size_t c = 0; c < part.numCols; ++c)
            result.values[part.col0 + c] += part_result.values[c];

        MvmShape shape;
        shape.rows = part.numRows;
        shape.cols = part.numCols;
        shape.elementBits = plan.elementBits;
        shape.bitsPerCell = plan.bitsPerCell;
        shape.inputBits = req.inputBits;
        // Tile idle at issue time: the Hct's own (arbiter-accurate)
        // completion is exact. Pipelined issue into a still-running
        // stream: completions space at the KernelModel steady-state
        // amortized interval (the Hct simulates one MVM at a time
        // and cannot express the overlap itself) — but never earlier
        // than one full MVM after this request's own issue cycle,
        // which matters when `earliest` lands mid-stream.
        const KernelCost mvm_cost = kernels_.mvm(shape);
        pipelined = pipelined || start < prev_busy;
        const Cycle part_done =
            start >= prev_busy
                ? part_result.done
                : std::max(prev_busy + mvm_cost.amortized,
                           start + mvm_cost.latency);
        busyUntil_[part.hctIndex] = part_done;
        // Keep the functional tile's clock on the modeled timeline:
        // the Hct ran this issue serially, so for pipelined issues
        // its arbiter would otherwise drift ahead of the amortized
        // schedule and bill the phantom time to the next idle-tile
        // issue.
        chip_.hct(part.hctIndex).arbiter().rebase(part_done);
        nextIssue_[part.hctIndex] = start + mvm_cost.amortized;
        lastUid_[part.hctIndex] = req.pm->uid;

        done = std::max(done, part_done);
        result.start = first ? start : std::min(result.start, start);
        first = false;
    }

    if (plan.rowSplit) {
        // Cross-part reduction: partial sums are shuffled to the home
        // tile and added with pipelined DCE ADDs; charge one ADD per
        // extra part per column stripe plus the row I/O.
        std::size_t parts_per_col = 0;
        for (const auto &part : plan.parts)
            parts_per_col += part.col0 == plan.parts[0].col0;
        const std::size_t extra =
            parts_per_col > 0 ? parts_per_col - 1 : 0;
        if (extra > 0) {
            const auto add =
                kernels_.macro(digital::MacroKind::Add, 32);
            const auto io =
                kernels_.rowIo(std::min<std::size_t>(plan.cols, 64));
            const Cycle penalty = static_cast<Cycle>(extra) *
                                  (add.amortized + io.latency);
            done += penalty;
            const std::size_t home = plan.parts[0].hctIndex;
            busyUntil_[home] = std::max(busyUntil_[home], done);
            chip_.hct(home).arbiter().rebase(busyUntil_[home]);
            // The home tile's DCE is doing the cross-part adds, so
            // the next pipelined issue slips by the same amount.
            nextIssue_[home] += penalty;
        }
    }
    result.done = done;

    doneCycle_[req.id - 1] = done;
    ++counters_.issued;
    counters_.pipelineHits += pipelined;
    results_.emplace(req.id,
                     CompletedRequest{std::move(result), req.session});
    ++completed_;
}

MvmResult
Scheduler::wait(const MvmFuture &future, u64 session)
{
    SeqLock lock(mu_);
    if (!future.valid())
        throw std::invalid_argument(
            "Scheduler::wait: invalid (default-constructed) future");
    auto it = results_.find(future.id());
    if (it == results_.end()) {
        // Not executed yet: validate once against the queue (ids
        // never re-enter it), then drain until the result appears.
        const auto qit = std::find_if(
            queue_.begin(), queue_.end(),
            [&](const Request &req) { return req.id == future.id(); });
        if (qit == queue_.end())
            throw std::invalid_argument(
                "Scheduler::wait: future " +
                std::to_string(future.id()) +
                " is unknown or was already collected");
        if (qit->session != session)
            throw std::invalid_argument(
                "Scheduler::wait: future " +
                std::to_string(future.id()) + " belongs to session " +
                std::to_string(qit->session) + ", not to session " +
                std::to_string(session));
        while ((it = results_.find(future.id())) == results_.end())
            executeAt(pickNext());
    }
    if (it->second.session != session)
        throw std::invalid_argument(
            "Scheduler::wait: future " + std::to_string(future.id()) +
            " belongs to session " +
            std::to_string(it->second.session) + ", not to session " +
            std::to_string(session));
    MvmResult result = std::move(it->second.result);
    results_.erase(it);
    return result;
}

Cycle
Scheduler::waitAll()
{
    SeqLock lock(mu_);
    while (!queue_.empty())
        executeAt(pickNext());
    return makespanLocked();
}

void
Scheduler::drainSession(u64 session)
{
    SeqLock lock(mu_);
    for (;;) {
        bool pending = false;
        for (const auto &req : queue_) {
            if (req.pm->session == session) {
                pending = true;
                break;
            }
        }
        if (!pending)
            return;
        executeAt(pickNext());
    }
}

void
Scheduler::discardSession(u64 session)
{
    SeqLock lock(mu_);
    for (auto it = results_.begin(); it != results_.end();) {
        if (it->second.session == session)
            it = results_.erase(it);
        else
            ++it;
    }
}

void
Scheduler::drainMatrix(int handle)
{
    SeqLock lock(mu_);
    for (;;) {
        bool pending = false;
        for (const auto &req : queue_) {
            if (req.pm->id == handle) {
                pending = true;
                break;
            }
        }
        if (!pending)
            return;
        executeAt(pickNext());
    }
}

Cycle
Scheduler::busyUntil(std::size_t hct) const
{
    SeqLock lock(mu_);
    if (hct >= busyUntil_.size())
        darth_panic("Scheduler::busyUntil: HCT ", hct,
                    " out of range ", busyUntil_.size());
    return busyUntil_[hct];
}

Cycle
Scheduler::makespan() const
{
    SeqLock lock(mu_);
    return makespanLocked();
}

Cycle
Scheduler::makespanLocked() const
{
    Cycle max = 0;
    for (Cycle t : busyUntil_)
        max = std::max(max, t);
    return max;
}

} // namespace runtime
} // namespace darth
