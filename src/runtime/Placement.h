/**
 * @file
 * Matrix placement structures shared by the planner (Runtime), the
 * submission scheduler, and the session layer.
 *
 * A matrix spreads over HCTs as a list of MatrixParts: column stripes
 * when one tile holds all rows, row stripes (with cross-part output
 * adds) when it cannot. A PlacedMatrix is one programmed placement —
 * the unit the scheduler routes MVM requests to and the unit a
 * session's MatrixHandle owns.
 */

#ifndef DARTH_RUNTIME_PLACEMENT_H
#define DARTH_RUNTIME_PLACEMENT_H

#include <cstddef>
#include <vector>

#include "common/Matrix.h"
#include "common/Types.h"

namespace darth
{
namespace runtime
{

/** One part of a matrix placed on one HCT. */
struct MatrixPart
{
    std::size_t hctIndex = 0;
    std::size_t row0 = 0;
    std::size_t numRows = 0;
    std::size_t col0 = 0;
    std::size_t numCols = 0;
};

/** Placement plan for a matrix. */
struct MatrixPlan
{
    std::vector<MatrixPart> parts;
    /** True when parts split rows (outputs need cross-part adds). */
    bool rowSplit = false;
    std::size_t rows = 0;
    std::size_t cols = 0;
    int elementBits = 0;
    int bitsPerCell = 0;
};

/** One matrix programmed onto the chip (owned by the Runtime). */
struct PlacedMatrix
{
    MatrixI matrix;
    MatrixPlan plan;
    bool analogEnabled = true;
    /** Owning session (0 = the legacy blocking shim). */
    u64 session = 0;
    /** Handle index in the Runtime registry (reused after release). */
    int id = -1;
    /** Never-reused placement identity (pipelining chains key on
     *  this, so a reused handle id cannot chain across placements). */
    u64 uid = 0;
};

} // namespace runtime
} // namespace darth

#endif // DARTH_RUNTIME_PLACEMENT_H
