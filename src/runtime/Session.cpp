#include "runtime/Session.h"

#include <stdexcept>
#include <string>
#include <utility>

#include "common/Logging.h"
#include "runtime/Runtime.h"

namespace darth
{
namespace runtime
{

// ---------------------------------------------------------------------------
// MatrixHandle
// ---------------------------------------------------------------------------

MatrixHandle::MatrixHandle(MatrixHandle &&other) noexcept
    : rt_(other.rt_), id_(other.id_), session_(other.session_)
{
    other.rt_ = nullptr;
    other.id_ = -1;
}

MatrixHandle &
MatrixHandle::operator=(MatrixHandle &&other) noexcept
{
    if (this != &other) {
        release();
        rt_ = other.rt_;
        id_ = other.id_;
        session_ = other.session_;
        other.rt_ = nullptr;
        other.id_ = -1;
    }
    return *this;
}

MatrixHandle::~MatrixHandle()
{
    release();
}

void
MatrixHandle::release()
{
    if (rt_ == nullptr)
        return;
    rt_->freeMatrix(id_);
    rt_ = nullptr;
    id_ = -1;
}

const MatrixPlan &
MatrixHandle::plan() const
{
    if (rt_ == nullptr)
        darth_fatal("MatrixHandle::plan: handle is not valid");
    return rt_->plan(id_);
}

const MatrixI &
MatrixHandle::matrix() const
{
    if (rt_ == nullptr)
        darth_fatal("MatrixHandle::matrix: handle is not valid");
    return rt_->matrix(id_);
}

// ---------------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------------

Session::Session(Session &&other) noexcept : rt_(nullptr), id_(0)
{
    // The source object's guarded state needs its own guard held;
    // only this object's members are exempt inside the constructor.
    SeqLock source(other.mu_);
    rt_ = other.rt_;
    id_ = other.id_;
    other.rt_ = nullptr;
}

Session &
Session::operator=(Session &&other) noexcept
{
    if (this != &other) {
        SeqLock lock(mu_);
        SeqLock source(other.mu_);
        retire();
        rt_ = other.rt_;
        id_ = other.id_;
        other.rt_ = nullptr;
    }
    return *this;
}

Session::~Session()
{
    SeqLock lock(mu_);
    retire();
}

void
Session::retire() noexcept
{
    if (rt_ == nullptr)
        return;
    // Execute anything still queued (handles may outlive the session
    // object), then drop results nobody collected so they cannot
    // accumulate across session lifetimes.
    rt_->scheduler().drainSession(id_);
    rt_->scheduler().discardSession(id_);
    rt_ = nullptr;
}

void
Session::requireLive(const char *what) const
{
    // A released (moved-from or retired) session must fail loudly at
    // the call site rather than dereference a null runtime — the
    // request would otherwise be accepted and only misbehave at wait.
    if (rt_ == nullptr)
        throw std::invalid_argument(
            std::string(what) +
            ": session has been released (moved-from)");
}

MatrixHandle
Session::setMatrix(const MatrixI &m, int element_bits, int precision)
{
    return setMatrixBits(
        m, element_bits, Runtime::precisionToBitsPerCell(precision));
}

MatrixHandle
Session::setMatrixBits(const MatrixI &m, int element_bits,
                       int bits_per_cell)
{
    SeqLock lock(mu_);
    requireLive("Session::setMatrixBits");
    const int handle =
        rt_->placeMatrix(m, element_bits, bits_per_cell, id_);
    return MatrixHandle(rt_, handle, id_);
}

MvmFuture
Session::submit(const MatrixHandle &handle, std::vector<i64> x,
                int input_bits, Cycle earliest)
{
    return submit(handle, std::move(x), input_bits, earliest, {});
}

MvmFuture
Session::submit(const MatrixHandle &handle, std::vector<i64> x,
                int input_bits, Cycle earliest,
                const std::vector<MvmFuture> &after)
{
    SeqLock lock(mu_);
    requireLive("Session::submit");
    if (!handle.valid())
        throw std::invalid_argument(
            "Session::submit: handle is not valid (released or "
            "moved-from)");
    if (handle.session_ != id_)
        throw std::invalid_argument(
            "Session::submit: matrix handle " +
            std::to_string(handle.id()) + " belongs to session " +
            std::to_string(handle.session_) + ", not to session " +
            std::to_string(id_));
    return rt_->scheduler().submit(rt_->placedRef(handle.id()),
                                   std::move(x), input_bits, earliest,
                                   after);
}

MvmResult
Session::wait(const MvmFuture &future)
{
    SeqLock lock(mu_);
    requireLive("Session::wait");
    return rt_->scheduler().wait(future, id_);
}

void
Session::waitAll()
{
    SeqLock lock(mu_);
    requireLive("Session::waitAll");
    rt_->scheduler().drainSession(id_);
}

MvmResult
Session::execMVM(const MatrixHandle &handle, const std::vector<i64> &x,
                 int input_bits, Cycle earliest)
{
    return wait(submit(handle, x, input_bits, earliest));
}

} // namespace runtime
} // namespace darth
