#include "runtime/InferenceGraph.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "common/Logging.h"

namespace darth
{
namespace runtime
{

InferenceGraph::InferenceGraph(Session &session) : session_(session)
{
}

InferenceGraph::Stage &
InferenceGraph::stageRef(StageId stage, const char *what)
{
    if (stage >= stages_.size())
        throw std::invalid_argument(
            std::string(what) + ": stage " + std::to_string(stage) +
            " does not exist (only " +
            std::to_string(stages_.size()) + " stages added)");
    return *stages_[stage];
}

StageId
InferenceGraph::addSource(Cycle ready)
{
    Stage stage;
    stage.kind = Kind::Source;
    stage.name = "source";
    stage.done = ready;
    stage.start = ready;
    stage.waited = true;
    stages_.push_back(std::make_unique<Stage>(std::move(stage)));
    return stages_.size() - 1;
}

StageId
InferenceGraph::addMvmStream(std::string name,
                             const MatrixHandle &handle,
                             std::vector<std::vector<i64>> inputs,
                             int input_bits,
                             const std::vector<StageId> &deps)
{
    if (inputs.empty())
        throw std::invalid_argument(
            "InferenceGraph::addMvmStream: stage '" + name +
            "' has no inputs");

    // Resolved dependencies (sources, digital stages, waited streams)
    // bound the start through `earliest`; in-flight stream
    // dependencies ride as `after` futures — their final future is
    // the stream's completion, since same-handle completions are
    // monotonic in submission order.
    Cycle earliest = 0;
    std::vector<MvmFuture> after;
    for (StageId dep : deps) {
        Stage &d = stageRef(dep, "InferenceGraph::addMvmStream");
        if (d.waited)
            earliest = std::max(earliest, d.done);
        else
            after.push_back(d.futures.back());
    }

    Stage stage;
    stage.kind = Kind::MvmStream;
    stage.name = std::move(name);
    stage.deps = deps;
    stage.futures.reserve(inputs.size());
    for (auto &x : inputs)
        stage.futures.push_back(session_.submit(
            handle, std::move(x), input_bits, earliest, after));
    mvmCount_ += stage.futures.size();
    stages_.push_back(std::make_unique<Stage>(std::move(stage)));
    return stages_.size() - 1;
}

StageId
InferenceGraph::addDigital(std::string name, Cycle cycles,
                           const std::vector<StageId> &deps)
{
    Cycle ready = 0;
    for (StageId dep : deps) {
        // Digital stages consume their dependencies' values on the
        // host, so stream dependencies materialize here.
        (void)stageRef(dep, "InferenceGraph::addDigital");
        ready = std::max(ready, doneCycle(dep));
    }
    Stage stage;
    stage.kind = Kind::Digital;
    stage.name = std::move(name);
    stage.deps = deps;
    stage.start = ready;
    stage.done = ready + cycles;
    stage.waited = true;
    stages_.push_back(std::make_unique<Stage>(std::move(stage)));
    return stages_.size() - 1;
}

void
InferenceGraph::waitStage(Stage &stage)
{
    if (stage.waited)
        return;
    stage.outputs.reserve(stage.futures.size());
    bool first = true;
    for (const MvmFuture &future : stage.futures) {
        MvmResult result = session_.wait(future);
        stage.done = std::max(stage.done, result.done);
        stage.start = first ? result.start
                            : std::min(stage.start, result.start);
        first = false;
        stage.outputs.push_back(std::move(result.values));
    }
    stage.futures.clear();
    stage.waited = true;
}

const std::vector<std::vector<i64>> &
InferenceGraph::outputs(StageId stage)
{
    Stage &s = stageRef(stage, "InferenceGraph::outputs");
    if (s.kind != Kind::MvmStream)
        throw std::invalid_argument(
            "InferenceGraph::outputs: stage '" + s.name +
            "' is not an MVM stream");
    waitStage(s);
    return s.outputs;
}

Cycle
InferenceGraph::doneCycle(StageId stage)
{
    Stage &s = stageRef(stage, "InferenceGraph::doneCycle");
    waitStage(s);
    return s.done;
}

GraphStats
InferenceGraph::finish()
{
    GraphStats stats;
    bool first_stream = true;
    for (const auto &stage : stages_) {
        waitStage(*stage);
        stats.done = std::max(stats.done, stage->done);
        if (stage->kind == Kind::MvmStream) {
            stats.start = first_stream
                              ? stage->start
                              : std::min(stats.start, stage->start);
            first_stream = false;
        }
    }
    stats.mvmCount = mvmCount_;
    return stats;
}

const std::string &
InferenceGraph::stageName(StageId stage) const
{
    if (stage >= stages_.size())
        darth_panic("InferenceGraph::stageName: stage ", stage,
                    " out of range ", stages_.size());
    return stages_[stage]->name;
}

// ---------------------------------------------------------------------------
// InferenceRun
// ---------------------------------------------------------------------------

InferenceRun::InferenceRun(Session &session, Cycle ready)
    : graph_(session), source_(graph_.addSource(ready))
{
}

void
InferenceRun::addStep(std::string name, Cycle nominal, Step step)
{
    if (!step)
        darth_panic("InferenceRun::addStep: step '", name,
                    "' has no body");
    PlannedStep planned;
    planned.name = std::move(name);
    planned.nominal = nominal;
    planned.fn = std::move(step);
    steps_.push_back(std::move(planned));
}

const InferenceRun::PlannedStep &
InferenceRun::stepRef(std::size_t step, const char *what,
                      bool must_be_submitted) const
{
    if (step >= steps_.size())
        throw std::invalid_argument(
            std::string(what) + ": step " + std::to_string(step) +
            " does not exist (only " + std::to_string(steps_.size()) +
            " steps planned)");
    if (must_be_submitted && step >= submitted_)
        throw std::invalid_argument(
            std::string(what) + ": step '" + steps_[step].name +
            "' has not been submitted yet (only " +
            std::to_string(submitted_) + " of " +
            std::to_string(steps_.size()) + " submitted)");
    return steps_[step];
}

const std::string &
InferenceRun::stepName(std::size_t step) const
{
    return stepRef(step, "InferenceRun::stepName", false).name;
}

Cycle
InferenceRun::stepNominal(std::size_t step) const
{
    return stepRef(step, "InferenceRun::stepNominal", false).nominal;
}

std::size_t
InferenceRun::submitNext(Cycle admitted)
{
    if (finished())
        throw std::invalid_argument(
            "InferenceRun::submitNext: all " +
            std::to_string(steps_.size()) +
            " steps have already been submitted");
    PlannedStep &step = steps_[submitted_];
    step.first = graph_.stageCount();
    const StageId admit = graph_.addSource(admitted);
    step.fn(*this, admit);
    step.last = graph_.stageCount();
    return submitted_++;
}

Cycle
InferenceRun::stepDone(std::size_t step)
{
    const PlannedStep &s =
        stepRef(step, "InferenceRun::stepDone", true);
    Cycle done = 0;
    for (StageId stage = s.first; stage < s.last; ++stage)
        done = std::max(done, graph_.doneCycle(stage));
    return done;
}

GraphStats
InferenceRun::runToCompletion(Cycle admitted)
{
    while (!finished())
        submitNext(admitted);
    return finish();
}

GraphStats
InferenceRun::finish()
{
    if (!finished())
        throw std::invalid_argument(
            "InferenceRun::finish: only " +
            std::to_string(submitted_) + " of " +
            std::to_string(steps_.size()) +
            " steps have been submitted");
    return graph_.finish();
}

} // namespace runtime
} // namespace darth
