#include "digital/Synthesis.h"

#include "common/Logging.h"

namespace darth
{
namespace digital
{

namespace
{

/**
 * Hand-optimized OSCAR full adder (11 NOR/OR ops) with shared
 * sub-expressions; the generic builder lowering would cost 17.
 *
 *   and_ab = AND(a, b), x1 = a ^ b,
 *   and_x1c = AND(x1, cin), sum = x1 ^ cin,
 *   cout = and_ab | and_x1c.
 */
BitProgram
oscarFullAdder(bool invert_b)
{
    BitProgram p;
    auto reg = [&p]() { return p.numRegs++; };
    auto op = [&p](Prim prim, int dst, int a, int b) {
        p.ops.push_back({prim, dst, a, b});
    };

    int b_in = kRegB;
    if (invert_b) {
        b_in = reg();
        op(Prim::Nor, b_in, kRegB, kRegB);          // ~b
    }

    const int nor_ab = reg();
    op(Prim::Nor, nor_ab, kRegA, b_in);
    const int na = reg();
    op(Prim::Nor, na, kRegA, kRegA);
    const int nb = reg();
    op(Prim::Nor, nb, b_in, b_in);
    const int and_ab = reg();
    op(Prim::Nor, and_ab, na, nb);
    const int x1 = reg();
    op(Prim::Nor, x1, nor_ab, and_ab);              // a ^ b
    const int nor_x1c = reg();
    op(Prim::Nor, nor_x1c, x1, kRegCin);
    const int nx1 = reg();
    op(Prim::Nor, nx1, x1, x1);
    const int nc = reg();
    op(Prim::Nor, nc, kRegCin, kRegCin);
    const int and_x1c = reg();
    op(Prim::Nor, and_x1c, nx1, nc);
    const int sum = reg();
    op(Prim::Nor, sum, nor_x1c, and_x1c);           // x1 ^ cin
    const int cout = reg();
    op(Prim::Or, cout, and_ab, and_x1c);

    p.resultReg = sum;
    p.carryOutReg = cout;
    return p;
}

/** Ideal-family full adder: 5 single-cycle ops (6 for Sub). */
BitProgram
idealFullAdder(bool invert_b)
{
    BitProgram p;
    auto reg = [&p]() { return p.numRegs++; };
    auto op = [&p](Prim prim, int dst, int a, int b) {
        p.ops.push_back({prim, dst, a, b});
    };

    int b_in = kRegB;
    if (invert_b) {
        b_in = reg();
        op(Prim::Not, b_in, kRegB, kRegB);
    }

    const int x1 = reg();
    op(Prim::Xor, x1, kRegA, b_in);
    const int sum = reg();
    op(Prim::Xor, sum, x1, kRegCin);
    const int and_ab = reg();
    op(Prim::And, and_ab, kRegA, b_in);
    const int and_x1c = reg();
    op(Prim::And, and_x1c, x1, kRegCin);
    const int cout = reg();
    op(Prim::Or, cout, and_ab, and_x1c);

    p.resultReg = sum;
    p.carryOutReg = cout;
    return p;
}

/** Simple two-input macro via the lowering builder. */
BitProgram
simpleMacro(Prim prim, const LogicFamily &family)
{
    BitProgramBuilder builder(family);
    const int result = builder.emit(prim, kRegA, kRegB);
    return builder.finish(result);
}

/** dst = cin ? b : a, selecting per element with the carry column. */
BitProgram
muxMacro(const LogicFamily &family)
{
    BitProgramBuilder builder(family);
    const int not_sel = builder.emit(Prim::Not, kRegCin, kRegCin);
    const int keep_a = builder.emit(Prim::And, kRegA, not_sel);
    const int take_b = builder.emit(Prim::And, kRegB, kRegCin);
    const int result = builder.emit(Prim::Or, keep_a, take_b);
    return builder.finish(result);
}

} // namespace

const char *
macroName(MacroKind kind)
{
    switch (kind) {
      case MacroKind::Not: return "NOT";
      case MacroKind::Copy: return "COPY";
      case MacroKind::And: return "AND";
      case MacroKind::Or: return "OR";
      case MacroKind::Nor: return "NOR";
      case MacroKind::Nand: return "NAND";
      case MacroKind::Xor: return "XOR";
      case MacroKind::Xnor: return "XNOR";
      case MacroKind::Add: return "ADD";
      case MacroKind::Sub: return "SUB";
      case MacroKind::Mux: return "MUX";
    }
    return "?";
}

BitProgram
synthesizeMacro(MacroKind kind, const LogicFamily &family)
{
    const bool oscar = family.kind() == LogicFamilyKind::Oscar;
    switch (kind) {
      case MacroKind::Not: {
        BitProgramBuilder builder(family);
        const int result = builder.emit(Prim::Not, kRegA, kRegA);
        return builder.finish(result);
      }
      case MacroKind::Copy: {
        BitProgramBuilder builder(family);
        const int result = builder.emit(Prim::Copy, kRegA, kRegA);
        return builder.finish(result);
      }
      case MacroKind::And: return simpleMacro(Prim::And, family);
      case MacroKind::Or: return simpleMacro(Prim::Or, family);
      case MacroKind::Nor: return simpleMacro(Prim::Nor, family);
      case MacroKind::Nand: return simpleMacro(Prim::Nand, family);
      case MacroKind::Xor: return simpleMacro(Prim::Xor, family);
      case MacroKind::Xnor: return simpleMacro(Prim::Xnor, family);
      case MacroKind::Add:
        return oscar ? oscarFullAdder(false) : idealFullAdder(false);
      case MacroKind::Sub:
        return oscar ? oscarFullAdder(true) : idealFullAdder(true);
      case MacroKind::Mux: return muxMacro(family);
    }
    darth_panic("synthesizeMacro: unknown macro");
}

bool
initialCarry(MacroKind kind)
{
    return kind == MacroKind::Sub;
}

u64
referenceMacro(MacroKind kind, u64 a, u64 b, int bits)
{
    const u64 mask =
        bits >= 64 ? ~0ULL : ((1ULL << bits) - 1ULL);
    u64 result = 0;
    switch (kind) {
      case MacroKind::Not: result = ~a; break;
      case MacroKind::Copy: result = a; break;
      case MacroKind::And: result = a & b; break;
      case MacroKind::Or: result = a | b; break;
      case MacroKind::Nor: result = ~(a | b); break;
      case MacroKind::Nand: result = ~(a & b); break;
      case MacroKind::Xor: result = a ^ b; break;
      case MacroKind::Xnor: result = ~(a ^ b); break;
      case MacroKind::Add: result = a + b; break;
      case MacroKind::Sub: result = a - b; break;
      case MacroKind::Mux:
        darth_panic("referenceMacro: MUX needs a select operand");
    }
    return result & mask;
}

} // namespace digital
} // namespace darth
