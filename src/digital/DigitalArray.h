/**
 * @file
 * Device-backed SLC digital PUM array (one OSCAR-capable ReRAM mat).
 *
 * The performance-model pipelines (Pipeline.h) keep state as packed
 * bit columns for speed; DigitalArray is the device-faithful
 * counterpart, executing column-parallel NOR on reram::CellArray
 * devices. It exists to validate that SLC digital PUM is bit-exact
 * under the noise models (digital read-back snaps to the nearest
 * level), and to serve as the array primitive in device-level tests.
 */

#ifndef DARTH_DIGITAL_DIGITALARRAY_H
#define DARTH_DIGITAL_DIGITALARRAY_H

#include <cstddef>

#include "common/BitVector.h"
#include "reram/CellArray.h"

namespace darth
{
namespace digital
{

/** SLC ReRAM array executing OSCAR-style column-parallel Boolean ops. */
class DigitalArray
{
  public:
    /**
     * @param rows   Wordlines (vector elements).
     * @param cols   Bitlines (operand columns).
     * @param noise  Device non-idealities.
     * @param seed   RNG seed.
     */
    DigitalArray(std::size_t rows, std::size_t cols,
                 const reram::NoiseModel &noise = reram::NoiseModel{},
                 u64 seed = 1);

    std::size_t rows() const { return cells_.rows(); }
    std::size_t cols() const { return cells_.cols(); }

    /** Write a full column of bits. */
    void writeColumn(std::size_t col, const BitVector &bits);

    /** Read a full column of bits (digital read-back). */
    BitVector readColumn(std::size_t col) const;

    /** Write one bit. */
    void writeBit(std::size_t row, std::size_t col, bool value);

    /** Read one bit. */
    bool readBit(std::size_t row, std::size_t col) const;

    /**
     * Column-parallel OSCAR NOR: for every row r,
     * dst[r] = NOR(a[r], b[r]). All wordlines float; the output
     * devices switch according to the input cell states (Figure 4).
     */
    void columnNor(std::size_t dst, std::size_t a, std::size_t b);

    /** Column-parallel OSCAR OR. */
    void columnOr(std::size_t dst, std::size_t a, std::size_t b);

    /** Number of in-array Boolean operations executed. */
    u64 opCount() const { return opCount_; }

    /** Underlying cell array (fault/wear inspection). */
    const reram::CellArray &cells() const { return cells_; }

  private:
    reram::CellArray cells_;
    u64 opCount_ = 0;
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_DIGITALARRAY_H
