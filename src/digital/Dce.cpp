#include "digital/Dce.h"

#include <algorithm>

#include "common/Logging.h"

namespace darth
{
namespace digital
{

Dce::Dce(const DceConfig &config, CostTally *tally) : cfg_(config)
{
    pipes_.reserve(cfg_.numPipelines);
    for (std::size_t i = 0; i < cfg_.numPipelines; ++i)
        pipes_.push_back(
            std::make_unique<Pipeline>(cfg_.pipeline, tally));
}

Pipeline &
Dce::pipeline(std::size_t i)
{
    if (i >= pipes_.size())
        darth_panic("Dce: pipeline ", i, " out of range ",
                    pipes_.size());
    return *pipes_[i];
}

const Pipeline &
Dce::pipeline(std::size_t i) const
{
    if (i >= pipes_.size())
        darth_panic("Dce: pipeline ", i, " out of range ",
                    pipes_.size());
    return *pipes_[i];
}

Cycle
Dce::execMacroAll(MacroKind kind, std::size_t first, std::size_t count,
                 std::size_t dst, std::size_t a, std::size_t b,
                 std::size_t bits, Cycle issue)
{
    Cycle done = issue;
    for (std::size_t i = first; i < first + count; ++i)
        done = std::max(done,
                        pipeline(i).execMacro(kind, dst, a, b, bits,
                                              issue));
    return done;
}

u64
Dce::opCount() const
{
    u64 total = 0;
    for (const auto &pipe : pipes_)
        total += pipe->opCount();
    return total;
}

} // namespace digital
} // namespace darth
