#include "digital/Pipeline.h"

#include <algorithm>

#include "common/Logging.h"

namespace darth
{
namespace digital
{

Pipeline::Pipeline(const PipelineConfig &config, CostTally *tally)
    : cfg_(config), family_(config.family), tally_(tally),
      stageFree_(config.depth, 0)
{
    if (cfg_.depth == 0 || cfg_.width == 0 || cfg_.numRegs == 0)
        darth_fatal("Pipeline: zero-sized configuration");
    if (cfg_.width > 64)
        darth_fatal("Pipeline: width > 64 elements per array is not "
                    "supported by the row I/O model");
    bits_.resize(cfg_.numRegs);
    for (auto &reg : bits_)
        reg.assign(cfg_.depth, BitVector(cfg_.width));
}

void
Pipeline::checkReg(std::size_t vr) const
{
    if (vr >= cfg_.numRegs)
        darth_panic("Pipeline: VR ", vr, " out of range ", cfg_.numRegs);
}

void
Pipeline::checkElem(std::size_t elem) const
{
    if (elem >= cfg_.width)
        darth_panic("Pipeline: element ", elem, " out of range ",
                    cfg_.width);
}

void
Pipeline::setElement(std::size_t vr, std::size_t elem, u64 value)
{
    checkReg(vr);
    checkElem(elem);
    for (std::size_t bit = 0; bit < cfg_.depth; ++bit)
        bits_[vr][bit].set(elem, bit < 64 && ((value >> bit) & 1ULL));
}

void
Pipeline::setElement(std::size_t vr, std::size_t elem, u64 value,
                     std::size_t bits)
{
    checkReg(vr);
    checkElem(elem);
    const std::size_t n = std::min(bits, cfg_.depth);
    for (std::size_t bit = 0; bit < n; ++bit)
        bits_[vr][bit].set(elem, bit < 64 && ((value >> bit) & 1ULL));
}

namespace
{

/**
 * In-place 64x64 bit-matrix transpose network (the classic recursive
 * block-swap). In LSB indexing the raw network transposes along the
 * anti-diagonal, so callers go through bitTranspose below.
 */
void
transposeNetwork64(u64 a[64])
{
    u64 m = 0x00000000FFFFFFFFULL;
    for (u64 j = 32; j != 0; j >>= 1, m ^= m << j) {
        for (std::size_t k = 0; k < 64; k = (k + j + 1) & ~j) {
            const u64 t = (a[k] ^ (a[k + j] >> j)) & m;
            a[k] ^= t;
            a[k + j] ^= t << j;
        }
    }
}

/**
 * Main-diagonal 64x64 bit transpose: out[b] bit e == in[e] bit b.
 * Reversing the row order on the way in and out turns the network's
 * anti-diagonal transpose into the main-diagonal one; the transform
 * is an involution, so one function serves write and readback.
 */
void
bitTranspose(const u64 in[64], u64 out[64])
{
    u64 a[64];
    for (std::size_t k = 0; k < 64; ++k)
        a[k] = in[63 - k];
    transposeNetwork64(a);
    for (std::size_t b = 0; b < 64; ++b)
        out[b] = a[63 - b];
}

} // namespace

void
Pipeline::setElements(std::size_t vr, const u64 *values,
                      std::size_t count, std::size_t bits)
{
    checkReg(vr);
    if (count > cfg_.width)
        darth_panic("Pipeline: ", count, " elements out of range ",
                    cfg_.width);
    u64 in[64] = {0};
    for (std::size_t e = 0; e < count; ++e)
        in[e] = values[e];
    u64 columns[64];
    bitTranspose(in, columns);
    const u64 elem_mask =
        count >= 64 ? ~u64{0} : ((u64{1} << count) - 1);
    const std::size_t n = std::min(bits, cfg_.depth);
    for (std::size_t bit = 0; bit < n && bit < 64; ++bit) {
        BitVector &column = bits_[vr][bit];
        column.setWord((column.toInteger() & ~elem_mask) |
                       (columns[bit] & elem_mask));
    }
    // A u64 value has no bits past 64: the per-element loop writes
    // explicit zeros there, so the batch form must too.
    for (std::size_t bit = 64; bit < n; ++bit) {
        BitVector &column = bits_[vr][bit];
        column.setWord(column.toInteger() & ~elem_mask);
    }
}

void
Pipeline::elements(std::size_t vr, u64 *out, std::size_t count,
                   std::size_t bits) const
{
    checkReg(vr);
    if (count > cfg_.width)
        darth_panic("Pipeline: ", count, " elements out of range ",
                    cfg_.width);
    u64 columns[64] = {0};
    const std::size_t n =
        std::min<std::size_t>({bits, cfg_.depth, 64});
    for (std::size_t bit = 0; bit < n; ++bit)
        columns[bit] = bits_[vr][bit].toInteger();
    u64 values[64];
    bitTranspose(columns, values);
    for (std::size_t e = 0; e < count; ++e)
        out[e] = values[e];
}

u64
Pipeline::element(std::size_t vr, std::size_t elem,
                  std::size_t bits) const
{
    checkReg(vr);
    checkElem(elem);
    u64 value = 0;
    const std::size_t n = std::min<std::size_t>({bits, cfg_.depth, 64});
    for (std::size_t bit = 0; bit < n; ++bit)
        if (bits_[vr][bit].get(elem))
            value |= 1ULL << bit;
    return value;
}

void
Pipeline::clearReg(std::size_t vr)
{
    checkReg(vr);
    for (auto &column : bits_[vr])
        column.fill(false);
}

const BitVector &
Pipeline::bitColumn(std::size_t vr, std::size_t bit) const
{
    checkReg(vr);
    if (bit >= cfg_.depth)
        darth_panic("Pipeline: bit ", bit, " out of range ", cfg_.depth);
    return bits_[vr][bit];
}

void
Pipeline::recordOps(u64 column_ops)
{
    opCount_ += column_ops;
    if (tally_ == nullptr)
        return;
    if (tallyGen_ != tally_->generation()) {
        tallyGen_ = tally_->generation();
        boolopEntry_ = nullptr;
        ioEntry_ = nullptr;
    }
    if (boolopEntry_ == nullptr)
        boolopEntry_ = &tally_->entry("dce.boolop");
    boolopEntry_->events += column_ops;
    boolopEntry_->cycles += column_ops;
    boolopEntry_->energy +=
        static_cast<double>(column_ops) * cfg_.opEnergyPJ;
}

void
Pipeline::recordIo(u64 accesses)
{
    if (tally_ == nullptr)
        return;
    if (tallyGen_ != tally_->generation()) {
        tallyGen_ = tally_->generation();
        boolopEntry_ = nullptr;
        ioEntry_ = nullptr;
    }
    if (ioEntry_ == nullptr)
        ioEntry_ = &tally_->entry("dce.io");
    ioEntry_->events += accesses;
    ioEntry_->cycles += accesses;
    ioEntry_->energy += static_cast<double>(accesses) * cfg_.ioEnergyPJ;
}

Cycle
Pipeline::reserveStages(std::size_t bits, Cycle issue,
                        Cycle ops_per_stage, bool carry_chained)
{
    if (bits > cfg_.depth)
        darth_panic("Pipeline: macro over ", bits,
                    " bits exceeds depth ", cfg_.depth);
    // Control hands the macro to successive arrays one cycle apart; a
    // carry chain additionally forces stage i to wait for stage i-1's
    // full completion.
    Cycle prev_start = issue;
    Cycle prev_done = issue;
    Cycle completion = issue;
    for (std::size_t i = 0; i < bits; ++i) {
        const Cycle ready =
            carry_chained ? std::max(issue, prev_done)
                          : std::max(issue, prev_start + (i > 0 ? 1 : 0));
        const Cycle start = std::max(ready, stageFree_[i]);
        const Cycle done = start + ops_per_stage;
        stageFree_[i] = done;
        prev_start = start;
        prev_done = done;
        completion = std::max(completion, done);
    }
    return completion;
}

void
Pipeline::runProgram(const KernelCache::Entry &entry, std::size_t dst,
                     std::size_t a, std::size_t b, std::size_t bits,
                     BitVector carry_in, bool chain_carry)
{
    // A column holds at most 64 elements (enforced at construction),
    // so the gate program evaluates on packed words — column i of
    // every scratch register is one u64. Masking each op to the
    // width reproduces the column-vector evaluation bit for bit.
    const u64 width_mask =
        cfg_.width == 64 ? ~0ULL : ((1ULL << cfg_.width) - 1);
    u64 carry = carry_in.toInteger();

    // Fast path: the compiled truth-table kernel replaces the op
    // walk with a fixed handful of word operations per bit column.
    const CompiledKernel &kernel = entry.kernel;
    if (kernel.valid) {
        for (std::size_t bit = 0; bit < bits; ++bit) {
            const u64 wa = bits_[a][bit].toInteger();
            const u64 wb = bits_[b][bit].toInteger();
            const u64 out = kernel.evalResult(wa, wb, carry) & width_mask;
            if (chain_carry && kernel.hasCarry)
                carry = kernel.evalCarry(wa, wb, carry) & width_mask;
            bits_[dst][bit].setWord(out);
        }
        return;
    }

    const BitProgram &program = entry.program;
    std::vector<u64> regs(static_cast<std::size_t>(program.numRegs),
                          0ULL);
    for (std::size_t bit = 0; bit < bits; ++bit) {
        regs[kRegA] = bits_[a][bit].toInteger();
        regs[kRegB] = bits_[b][bit].toInteger();
        regs[kRegCin] = carry;
        regs[kRegZero] = 0ULL;
        for (const auto &op : program.ops) {
            const u64 sa = regs[static_cast<std::size_t>(op.srcA)];
            const u64 sb = regs[static_cast<std::size_t>(op.srcB)];
            u64 out = 0;
            switch (op.prim) {
              case Prim::Nor: out = ~(sa | sb); break;
              case Prim::Or: out = sa | sb; break;
              case Prim::And: out = sa & sb; break;
              case Prim::Nand: out = ~(sa & sb); break;
              case Prim::Xor: out = sa ^ sb; break;
              case Prim::Xnor: out = ~(sa ^ sb); break;
              case Prim::Not: out = ~sa; break;
              case Prim::Copy: out = sa; break;
            }
            regs[static_cast<std::size_t>(op.dst)] = out & width_mask;
        }
        bits_[dst][bit].setWord(
            regs[static_cast<std::size_t>(program.resultReg)]);
        if (chain_carry && program.hasCarryChain())
            carry = regs[static_cast<std::size_t>(program.carryOutReg)];
    }
}

const KernelCache::Entry &
Pipeline::cachedEntry(MacroKind kind)
{
    const std::size_t index = static_cast<std::size_t>(kind);
    if (entries_.size() <= index)
        entries_.resize(index + 1, nullptr);
    if (entries_[index] == nullptr)
        entries_[index] = &KernelCache::instance().macro(kind,
                                                         cfg_.family);
    return *entries_[index];
}

Cycle
Pipeline::execMacro(MacroKind kind, std::size_t dst, std::size_t a,
                    std::size_t b, std::size_t bits, Cycle issue)
{
    checkReg(dst);
    checkReg(a);
    checkReg(b);
    if (bits > cfg_.depth)
        darth_panic("Pipeline: macro over ", bits,
                    " bits exceeds depth ", cfg_.depth);
    const KernelCache::Entry &entry = cachedEntry(kind);
    const BitProgram &program = entry.program;
    runProgram(entry, dst, a, b, bits,
               BitVector(cfg_.width, initialCarry(kind)),
               program.hasCarryChain());
    recordOps(static_cast<u64>(program.opCount()) * bits);
    return reserveStages(bits, issue, program.opCount(),
                         program.hasCarryChain());
}

Cycle
Pipeline::timeMacro(MacroKind kind, std::size_t bits, Cycle issue)
{
    if (bits > cfg_.depth)
        darth_panic("Pipeline: macro over ", bits,
                    " bits exceeds depth ", cfg_.depth);
    const KernelCache::Entry &entry = cachedEntry(kind);
    const BitProgram &program = entry.program;
    recordOps(static_cast<u64>(program.opCount()) * bits);
    return reserveStages(bits, issue, program.opCount(),
                         program.hasCarryChain());
}

Cycle
Pipeline::execSelect(std::size_t dst, std::size_t a, std::size_t b,
                     std::size_t sel_vr, std::size_t sel_bit,
                     std::size_t bits, Cycle issue)
{
    checkReg(dst);
    checkReg(a);
    checkReg(b);
    checkReg(sel_vr);
    if (bits > cfg_.depth)
        darth_panic("Pipeline: macro over ", bits,
                    " bits exceeds depth ", cfg_.depth);
    const KernelCache::Entry &entry = cachedEntry(MacroKind::Mux);
    const BitProgram &program = entry.program;
    runProgram(entry, dst, a, b, bits, bits_[sel_vr][sel_bit], false);
    // +1 op per stage to broadcast the select column into the stage.
    const Cycle per_stage = program.opCount() + 1;
    recordOps(per_stage * bits);
    return reserveStages(bits, issue, per_stage, false);
}

Cycle
Pipeline::execShift(std::size_t dst, std::size_t src, std::size_t k,
                    bool up, std::size_t bits, Cycle issue)
{
    checkReg(dst);
    checkReg(src);
    if (bits > cfg_.depth)
        darth_panic("Pipeline: shift over ", bits, " bits exceeds depth");

    // Functional: move bit columns by k positions.
    std::vector<BitVector> out(cfg_.depth, BitVector(cfg_.width));
    for (std::size_t bit = 0; bit < bits; ++bit) {
        if (up) {
            if (bit + k < cfg_.depth)
                out[bit + k] = bits_[src][bit];
        } else {
            if (bit >= k)
                out[bit - k] = bits_[src][bit];
        }
    }
    for (std::size_t bit = 0; bit < cfg_.depth; ++bit)
        bits_[dst][bit] = out[bit];

    // Timing: each stage reads its column into the inter-array buffer
    // and the receiving stage writes it (2 accesses per hop), flowing
    // along the pipeline like a non-chained macro.
    const Cycle per_stage = 2 * std::max<std::size_t>(k, 1);
    recordOps(per_stage * bits);
    return reserveStages(bits, issue, per_stage, false);
}

Cycle
Pipeline::execRotate(std::size_t vr, std::size_t k, std::size_t bits,
                     Cycle issue)
{
    checkReg(vr);
    if (bits == 0 || k >= bits)
        darth_panic("Pipeline: bad rotate k=", k, " bits=", bits);

    // Functional: cyclic rotate of each element's low `bits` bits.
    std::vector<BitVector> rotated(bits, BitVector(cfg_.width));
    for (std::size_t bit = 0; bit < bits; ++bit)
        rotated[(bit + k) % bits] = bits_[vr][bit];
    for (std::size_t bit = 0; bit < bits; ++bit)
        bits_[vr][bit] = rotated[bit];

    // Timing (§5.3): drain the whole pipeline, switch to reverse
    // propagation, right-shift by (bits - k), then restore direction.
    const Cycle drained = std::max(issue, drainTime());
    const Cycle shift_cost = 2 * (bits - k);
    const Cycle done = drained + cfg_.depth + shift_cost + cfg_.depth;
    for (auto &stage : stageFree_)
        stage = std::max(stage, done);
    recordOps(shift_cost * bits + 2 * bits);
    return done;
}

Cycle
Pipeline::writeRow(std::size_t vr, std::size_t elem, u64 value,
                   std::size_t lo_bit, std::size_t bits, Cycle when)
{
    checkReg(vr);
    checkElem(elem);
    if (lo_bit + bits > cfg_.depth)
        darth_panic("Pipeline::writeRow: bits [", lo_bit, ", ",
                    lo_bit + bits, ") exceed depth ", cfg_.depth);
    for (std::size_t i = 0; i < bits; ++i)
        bits_[vr][lo_bit + i].set(elem, (value >> i) & 1ULL);
    recordIo(1);
    return when + 1;        // the DCE write port moves one row/cycle
}

u64
Pipeline::readRow(std::size_t vr, std::size_t elem, Cycle when)
{
    (void)when;
    recordIo(1);
    return element(vr, elem, cfg_.depth);
}

Cycle
Pipeline::elementLoad(std::size_t dst, std::size_t addr_vr,
                      const Pipeline &table, std::size_t table_base_vr,
                      std::size_t bits, Cycle issue)
{
    checkReg(dst);
    checkReg(addr_vr);
    Cycle t = std::max(issue, drainTime());
    for (std::size_t elem = 0; elem < cfg_.width; ++elem) {
        const u64 addr = element(addr_vr, elem, bits);
        const std::size_t entry_vr =
            table_base_vr +
            static_cast<std::size_t>(addr) / table.cfg_.width;
        const std::size_t entry_row =
            static_cast<std::size_t>(addr) % table.cfg_.width;
        if (entry_vr >= table.cfg_.numRegs)
            darth_panic("Pipeline::elementLoad: address ", addr,
                        " overflows the table registers");
        const u64 value = table.element(entry_vr, entry_row, bits);
        setElement(dst, elem, value);
        t += 3;              // address read, table read, write-back
        recordIo(3);
    }
    for (auto &stage : stageFree_)
        stage = std::max(stage, t);
    return t;
}

Cycle
Pipeline::elementStore(std::size_t src, std::size_t addr_vr,
                       Pipeline &table, std::size_t table_base_vr,
                       std::size_t bits, Cycle issue)
{
    checkReg(src);
    checkReg(addr_vr);
    Cycle t = std::max(issue, drainTime());
    for (std::size_t elem = 0; elem < cfg_.width; ++elem) {
        const u64 addr = element(addr_vr, elem, bits);
        const std::size_t entry_vr =
            table_base_vr +
            static_cast<std::size_t>(addr) / table.cfg_.width;
        const std::size_t entry_row =
            static_cast<std::size_t>(addr) % table.cfg_.width;
        if (entry_vr >= table.cfg_.numRegs)
            darth_panic("Pipeline::elementStore: address ", addr,
                        " overflows the table registers");
        table.setElement(entry_vr, entry_row, element(src, elem, bits));
        t += 3;
        recordIo(3);
    }
    for (auto &stage : stageFree_)
        stage = std::max(stage, t);
    return t;
}

Cycle
Pipeline::drainTime() const
{
    Cycle latest = 0;
    for (Cycle stage : stageFree_)
        latest = std::max(latest, stage);
    return latest;
}

} // namespace digital
} // namespace darth
