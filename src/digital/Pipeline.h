/**
 * @file
 * RACER-style bit-pipelined digital PUM pipeline.
 *
 * A pipeline is a chain of `depth` SLC ReRAM arrays. Vector register
 * (VR) j occupies column j of every array; element e occupies row e;
 * array i holds bit position i of every value (Figure 5: values are
 * bit-striped). A macro instruction (ADD, XOR, ...) is realized as a
 * short gate program per bit position, executed in array i for bit i;
 * instructions flow through the arrays like a classic pipeline, so
 * independent macros overlap (bit-pipelining) while carry chains
 * serialize stage-to-stage.
 *
 * The pipeline is simultaneously a *functional* simulator (bit columns
 * are evaluated with real gate programs, so results are bit-exact) and
 * a *timing* model (per-stage reservation of array time).
 */

#ifndef DARTH_DIGITAL_PIPELINE_H
#define DARTH_DIGITAL_PIPELINE_H

#include <cstddef>
#include <string>
#include <vector>

#include "common/BitVector.h"
#include "common/Stats.h"
#include "common/Types.h"
#include "digital/KernelCache.h"
#include "digital/LogicFamily.h"
#include "digital/Synthesis.h"

namespace darth
{
namespace digital
{

/** Static configuration of one pipeline (Table 2 defaults). */
struct PipelineConfig
{
    /** Number of arrays in the chain = bit-width capacity. */
    std::size_t depth = 64;
    /** Elements per vector register (array rows). */
    std::size_t width = 64;
    /** Vector registers (array columns). */
    std::size_t numRegs = 64;
    /** Logic family executed by the arrays. */
    LogicFamilyKind family = LogicFamilyKind::Oscar;
    /** Energy per in-array column primitive, picojoules. */
    double opEnergyPJ = 8.0;
    /** Energy per row-wide I/O access, picojoules. */
    double ioEnergyPJ = 1.5;
};

/**
 * One bit-pipelined compute pipeline with its vector register file.
 */
class Pipeline
{
  public:
    /**
     * @param config  Pipeline geometry and logic family.
     * @param tally   Optional cost sink (categories "dce.*").
     */
    explicit Pipeline(const PipelineConfig &config,
                      CostTally *tally = nullptr);

    const PipelineConfig &config() const { return cfg_; }
    const LogicFamily &family() const { return family_; }

    // ------------------------------------------------------------------
    // Functional state access (test/debug interface; no cost recorded).
    // ------------------------------------------------------------------

    /** Write an element's integer value into a VR. */
    void setElement(std::size_t vr, std::size_t elem, u64 value);

    /**
     * Write only the low `bits` columns of an element; columns >= bits
     * keep their previous contents. Hot-path variant for staging MVM
     * partial products whose upper columns are already zero.
     */
    void setElement(std::size_t vr, std::size_t elem, u64 value,
                    std::size_t bits);

    /** Read an element's integer value (low `bits` bits). */
    u64 element(std::size_t vr, std::size_t elem,
                std::size_t bits = 64) const;

    /**
     * Batch transfer: write elements 0..count-1 of a VR in one call,
     * each element's low `bits` columns taken from values[e]
     * (elements >= count and columns >= bits keep their contents,
     * matching a setElement(vr, e, values[e], bits) loop exactly).
     * One 64x64 bit-matrix transpose on the host replaces count*bits
     * single-bit writes — the ADC-to-DCE staging hot path.
     */
    void setElements(std::size_t vr, const u64 *values,
                     std::size_t count, std::size_t bits);

    /**
     * Batch read of elements 0..count-1 (low `bits` bits each) into
     * out[e] — the transposed inverse of setElements, used for
     * accumulator readback.
     */
    void elements(std::size_t vr, u64 *out, std::size_t count,
                  std::size_t bits) const;

    /** Zero out a vector register. */
    void clearReg(std::size_t vr);

    /** Direct access to the bit column of (vr, bit). */
    const BitVector &bitColumn(std::size_t vr, std::size_t bit) const;

    // ------------------------------------------------------------------
    // Macro execution (functional + timed). All exec* methods return
    // the cycle at which the macro completes, given the earliest issue
    // time; per-stage occupancy is reserved internally.
    // ------------------------------------------------------------------

    /** dst = op(a, b) over the low `bits` bit positions. */
    Cycle execMacro(MacroKind kind, std::size_t dst, std::size_t a,
                    std::size_t b, std::size_t bits, Cycle issue);

    /**
     * Timing/energy half of execMacro with no functional bit work:
     * records the same op count and reserves the same stage
     * occupancy, returning the same completion cycle. For callers
     * that evaluate the macro's (known) arithmetic element-natively
     * — the HCT's compiled MVM reduction — and only need the
     * simulated cost charged; the caller owns re-materializing the
     * register file (setElements) before anyone reads it.
     */
    Cycle timeMacro(MacroKind kind, std::size_t bits, Cycle issue);

    /**
     * Per-element select: dst = sel ? b : a, where the select bit is
     * bit `sel_bit` of register `sel_vr` (broadcast across stages).
     * Realizes ReLU-style masking without dedicated hardware.
     */
    Cycle execSelect(std::size_t dst, std::size_t a, std::size_t b,
                     std::size_t sel_vr, std::size_t sel_bit,
                     std::size_t bits, Cycle issue);

    /**
     * Logical shift of bit positions by k (up = toward MSB,
     * multiply by 2^k). Implemented with the inter-array transfer
     * buffers: two accesses per stage, chained along the pipeline.
     */
    Cycle execShift(std::size_t dst, std::size_t src, std::size_t k,
                    bool up, std::size_t bits, Cycle issue);

    /**
     * Cyclic rotation of each element's low `bits` bits by k positions
     * toward the MSB. There is no wrap-around buffer at the pipeline
     * head, so the hardware drains the pipeline, reverses propagation,
     * and right-shifts (Section 5.3 ShiftRows); the cost model charges
     * that full macro.
     */
    Cycle execRotate(std::size_t vr, std::size_t k, std::size_t bits,
                     Cycle issue);

    // ------------------------------------------------------------------
    // Row I/O (the DCE write port: one row per cycle).
    // ------------------------------------------------------------------

    /**
     * Write `bits` bits of `value` into element row `elem` of register
     * `vr`, starting at bit position `lo_bit` (the shift units set
     * lo_bit during ACE->DCE transfers). One cycle.
     */
    Cycle writeRow(std::size_t vr, std::size_t elem, u64 value,
                   std::size_t lo_bit, std::size_t bits, Cycle when);

    /** Read element row `elem` of register `vr`. One cycle. */
    u64 readRow(std::size_t vr, std::size_t elem, Cycle when);

    /**
     * Element-wise gather (the DARTH-PUM load extension, §4.2): for
     * each element e, read addr = a[e] from `addr_vr`, fetch entry
     * `addr` from the table laid out in `table` starting at register
     * `table_base_vr` (entry t lives at register table_base_vr + t /
     * width, row t % width), and write it to dst[e]. Three cycles per
     * element (address read-out, adjacent-pipeline read, write-back).
     */
    Cycle elementLoad(std::size_t dst, std::size_t addr_vr,
                      const Pipeline &table, std::size_t table_base_vr,
                      std::size_t bits, Cycle issue);

    /** Element-wise scatter counterpart of elementLoad. */
    Cycle elementStore(std::size_t src, std::size_t addr_vr,
                       Pipeline &table, std::size_t table_base_vr,
                       std::size_t bits, Cycle issue);

    /** Earliest cycle at which stage 0 can accept a new macro. */
    Cycle stage0FreeAt() const { return stageFree_.empty() ? 0
                                                           : stageFree_[0]; }

    /** Cycle at which the whole pipeline drains (max stage time). */
    Cycle drainTime() const;

    /**
     * Overwrite every stage's free time (both directions) — the
     * pipeline-side analogue of Arbiter::rebase. KernelModel uses it
     * to time each measured shape from cycle 0 on the reused scratch
     * tile instead of behind the previous measurement's stages.
     */
    void
    rebase(Cycle when)
    {
        for (auto &stage : stageFree_)
            stage = when;
    }

    /** Total in-array primitive ops executed so far. */
    u64 opCount() const { return opCount_; }

  private:
    /**
     * Per-instance pointer cache over the process-wide KernelCache:
     * macro programs are family-fixed, execMacro sits on the
     * MVM-reduction hot path, and the global cache's entries are
     * stable for the process lifetime.
     */
    const KernelCache::Entry &cachedEntry(MacroKind kind);

    /** Reserve stage time for a macro; returns completion cycle. */
    Cycle reserveStages(std::size_t bits, Cycle issue,
                        Cycle ops_per_stage, bool carry_chained);

    /**
     * Functionally evaluate a cached macro column-parallel: the
     * compiled truth-table kernel when the program compiled, the
     * BitProgram interpreter otherwise (bit-identical either way).
     *
     * @param carry        Initial carry/select column fed to kRegCin.
     * @param chain_carry  Propagate carry-out between bit positions.
     */
    void runProgram(const KernelCache::Entry &entry, std::size_t dst,
                    std::size_t a, std::size_t b, std::size_t bits,
                    BitVector carry, bool chain_carry);

    void checkReg(std::size_t vr) const;
    void checkElem(std::size_t elem) const;

    void recordOps(u64 column_ops);
    void recordIo(u64 accesses);

    PipelineConfig cfg_;
    LogicFamily family_;
    CostTally *tally_;

    /** bits_[vr][bit] = column of `width` bits. */
    std::vector<std::vector<BitVector>> bits_;
    std::vector<Cycle> stageFree_;
    /** entries_[kind]: resolved KernelCache entry (null until used). */
    std::vector<const KernelCache::Entry *> entries_;
    u64 opCount_ = 0;

    /** Cached tally accumulators (see CostTally::entry); revalidated
     *  against the tally generation because KernelModel clears its
     *  scratch tallies between measured shapes. */
    CostEntry *boolopEntry_ = nullptr;
    CostEntry *ioEntry_ = nullptr;
    u64 tallyGen_ = 0;
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_PIPELINE_H
