/**
 * @file
 * Digital PUM logic families.
 *
 * A logic family (Section 2.2.2) is the set of Boolean primitives a
 * memory technology can execute natively in-array, together with their
 * voltages and timing. DARTH-PUM uses OSCAR (NOR + OR in ReRAM); the
 * motivation study (Figure 7) also evaluates an "ideal" family that
 * executes any two-input Boolean operator in one cycle.
 */

#ifndef DARTH_DIGITAL_LOGICFAMILY_H
#define DARTH_DIGITAL_LOGICFAMILY_H

#include <string>

#include "common/Types.h"

namespace darth
{
namespace digital
{

/** Two-input (or one-input) Boolean primitives. */
enum class Prim
{
    Nor,
    Or,
    And,
    Nand,
    Xor,
    Xnor,
    Not,
    Copy,
};

/** Printable name of a primitive. */
const char *primName(Prim prim);

/** Apply a primitive to scalar bits (reference semantics). */
bool applyPrim(Prim prim, bool a, bool b);

/** Which logic family an array supports. */
enum class LogicFamilyKind
{
    /** OSCAR [138]: native NOR and OR on ReRAM. */
    Oscar,
    /** Hypothetical family with every primitive native (Figure 7). */
    Ideal,
};

/**
 * Static description of a logic family: which primitives execute
 * natively (one array cycle) and what each costs.
 */
class LogicFamily
{
  public:
    explicit LogicFamily(LogicFamilyKind kind) : kind_(kind) {}

    LogicFamilyKind kind() const { return kind_; }

    std::string name() const
    {
        return kind_ == LogicFamilyKind::Oscar ? "OSCAR" : "Ideal";
    }

    /** True when the primitive executes in one in-array operation. */
    bool
    isNative(Prim prim) const
    {
        if (kind_ == LogicFamilyKind::Ideal)
            return true;
        // OSCAR natively realizes NOR and OR (plus trivial copy via
        // OR with a zero column).
        return prim == Prim::Nor || prim == Prim::Or ||
               prim == Prim::Copy;
    }

    /** Array cycles for one native primitive (always 1 here). */
    Cycle nativeCost() const { return 1; }

  private:
    LogicFamilyKind kind_;
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_LOGICFAMILY_H
