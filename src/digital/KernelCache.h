/**
 * @file
 * Process-wide compiled-kernel cache: the dynamic-translation layer
 * of the digital PUM simulator.
 *
 * Every Pipeline used to synthesize its own gate programs and walk
 * their ops per macro call. Both costs are paid once per process now:
 *
 *   1. Synthesized BitPrograms are cached per (macro kind, logic
 *      family) — the program depends on nothing else — so scratch
 *      KernelModel pipelines stop re-deriving them.
 *   2. Each cached program is additionally *compiled*: a per-bit gate
 *      program is a pure Boolean function of (a, b, cin), so it
 *      collapses to two 8-entry truth tables (result and carry-out).
 *      Execution evaluates those tables word-parallel with a handful
 *      of branch-free mask operations instead of interpreting the op
 *      list — same bits out, an order of magnitude fewer host ops.
 *
 * Compilation is conservative: a program that reads a scratch
 * register before writing it is not a pure function of its inputs
 * under the interpreter's persistent-scratch semantics, so it is
 * left uncompiled and the interpreter remains the executor. The
 * timing/energy model is untouched either way — op counts and stage
 * reservations still come from the synthesized program.
 */

#ifndef DARTH_DIGITAL_KERNELCACHE_H
#define DARTH_DIGITAL_KERNELCACHE_H

#include <atomic>
#include <map>
#include <mutex>
#include <utility>

#include "common/Types.h"
#include "digital/BitProgram.h"
#include "digital/LogicFamily.h"
#include "digital/Synthesis.h"

namespace darth
{
namespace digital
{

/**
 * Flat, branch-light compiled form of one BitProgram: Shannon
 * expansion on the carry input over two 2-input lookup tables, each
 * stored as four full-word minterm masks. Evaluating one bit column
 * of 64 elements costs ~20 bitwise host ops regardless of the gate
 * program's length.
 */
struct CompiledKernel
{
    /** False when the program is not SSA-pure (interpreter fallback). */
    bool valid = false;
    bool hasCarry = false;
    /**
     * result[c][m]: all-ones mask when the program's result bit is 1
     * for carry-in c and operand minterm m (m = a*2 + b).
     */
    u64 result[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};
    /** Carry-out truth masks, same layout (valid when hasCarry). */
    u64 carry[2][4] = {{0, 0, 0, 0}, {0, 0, 0, 0}};

    /** Word-parallel LUT2: minterm masks applied to operand words. */
    static u64
    lut(const u64 m[4], u64 a, u64 b)
    {
        return (m[0] & ~a & ~b) | (m[1] & ~a & b) | (m[2] & a & ~b) |
               (m[3] & a & b);
    }

    /** result word for operand words a/b and carry word c. */
    u64
    evalResult(u64 a, u64 b, u64 c) const
    {
        return (~c & lut(result[0], a, b)) | (c & lut(result[1], a, b));
    }

    /** carry-out word for operand words a/b and carry word c. */
    u64
    evalCarry(u64 a, u64 b, u64 c) const
    {
        return (~c & lut(carry[0], a, b)) | (c & lut(carry[1], a, b));
    }
};

/**
 * Process-wide translation cache shared by every Pipeline (and so by
 * every chip, scratch KernelModel HCT, and worker thread). Entries
 * are keyed by (MacroKind, LogicFamilyKind) — the only inputs
 * synthesizeMacro consumes — and never evicted; the whole population
 * is the macro-kind cross logic-family product.
 */
class KernelCache
{
  public:
    /** One cached macro: the synthesized program + its compiled form. */
    struct Entry
    {
        BitProgram program;
        CompiledKernel kernel;
    };

    /** The process-wide instance. */
    static KernelCache &instance();

    /**
     * Look up (synthesizing + compiling on first use) the entry for a
     * macro kind under a logic family. The returned reference is
     * stable for the process lifetime. Thread-safe.
     */
    const Entry &macro(MacroKind kind, LogicFamilyKind family);

    /** Cumulative lookup hits (entry already present). */
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }

    /** Cumulative lookup misses (synthesis + compilation runs). */
    u64
    misses() const
    {
        return misses_.load(std::memory_order_relaxed);
    }

    /**
     * Compile a BitProgram to truth-table form. Public for tests;
     * returns kernel.valid = false when the program reads a scratch
     * register before writing it (not a pure function of a/b/cin).
     */
    static CompiledKernel compile(const BitProgram &program);

  private:
    KernelCache() = default;

    mutable std::mutex mu_;
    std::map<std::pair<int, int>, Entry> entries_;
    std::atomic<u64> hits_{0};
    std::atomic<u64> misses_{0};
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_KERNELCACHE_H
