#include "digital/KernelCache.h"

#include <vector>

namespace darth
{
namespace digital
{

KernelCache &
KernelCache::instance()
{
    static KernelCache cache;
    return cache;
}

CompiledKernel
KernelCache::compile(const BitProgram &program)
{
    CompiledKernel kernel;
    if (program.resultReg < 0 || program.resultReg >= program.numRegs)
        return kernel;
    if (program.carryOutReg >= program.numRegs)
        return kernel;

    // SSA-purity guard: the interpreter's scratch registers persist
    // across bit positions, so a program is a pure function of
    // (a, b, cin) only if every scratch register is written before it
    // is read. Anything else falls back to the interpreter.
    std::vector<bool> defined(static_cast<std::size_t>(program.numRegs),
                              false);
    defined[kRegA] = defined[kRegB] = true;
    defined[kRegCin] = defined[kRegZero] = true;
    for (const auto &op : program.ops) {
        if (op.srcA < 0 || op.srcA >= program.numRegs)
            return kernel;
        if (op.srcB < 0 || op.srcB >= program.numRegs)
            return kernel;
        if (op.dst < 0 || op.dst >= program.numRegs)
            return kernel;
        if (!defined[static_cast<std::size_t>(op.srcA)])
            return kernel;
        // Not/Copy ignore srcB, so an undefined srcB is harmless.
        const bool uses_b = op.prim != Prim::Not && op.prim != Prim::Copy;
        if (uses_b && !defined[static_cast<std::size_t>(op.srcB)])
            return kernel;
        defined[static_cast<std::size_t>(op.dst)] = true;
    }
    if (!defined[static_cast<std::size_t>(program.resultReg)])
        return kernel;
    kernel.hasCarry = program.hasCarryChain();
    if (kernel.hasCarry &&
        !defined[static_cast<std::size_t>(program.carryOutReg)])
        return kernel;

    // Truth-table extraction: 8 scalar reference evaluations cover
    // the whole (a, b, cin) input space.
    for (int cin = 0; cin < 2; ++cin) {
        for (int a = 0; a < 2; ++a) {
            for (int b = 0; b < 2; ++b) {
                bool cout = false;
                const bool r = program.evaluate(a != 0, b != 0,
                                                cin != 0, &cout);
                const std::size_t m =
                    static_cast<std::size_t>(a * 2 + b);
                kernel.result[cin][m] = r ? ~0ULL : 0ULL;
                if (kernel.hasCarry)
                    kernel.carry[cin][m] = cout ? ~0ULL : 0ULL;
            }
        }
    }
    kernel.valid = true;
    return kernel;
}

const KernelCache::Entry &
KernelCache::macro(MacroKind kind, LogicFamilyKind family)
{
    const std::pair<int, int> key(static_cast<int>(kind),
                                  static_cast<int>(family));
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    Entry entry;
    entry.program = synthesizeMacro(kind, LogicFamily(family));
    entry.kernel = compile(entry.program);
    return entries_.emplace(key, std::move(entry)).first->second;
}

} // namespace digital
} // namespace darth
