/**
 * @file
 * Macro-operation synthesis: lowering vector macros (ADD, XOR, ...)
 * onto per-bit gate programs for a given logic family.
 *
 * The synthesized programs are both *executed* (the functional
 * simulator evaluates them column-parallel on vector-register bits,
 * so arithmetic is correct by construction) and *costed* (their op
 * counts drive the cycle model, so OSCAR-vs-ideal comparisons like
 * Figure 7 fall out of real gate counts).
 */

#ifndef DARTH_DIGITAL_SYNTHESIS_H
#define DARTH_DIGITAL_SYNTHESIS_H

#include "digital/BitProgram.h"
#include "digital/LogicFamily.h"

namespace darth
{
namespace digital
{

/** Vector macro operations a pipeline can execute. */
enum class MacroKind
{
    Not,    //!< dst = ~a
    Copy,   //!< dst = a
    And,    //!< dst = a & b
    Or,     //!< dst = a | b
    Nor,    //!< dst = ~(a | b)
    Nand,   //!< dst = ~(a & b)
    Xor,    //!< dst = a ^ b
    Xnor,   //!< dst = ~(a ^ b)
    Add,    //!< dst = a + b (carry-chained)
    Sub,    //!< dst = a - b (carry-chained, two's complement)
    Mux,    //!< dst = cin ? b : a (per-bit select in carry slot)
};

/** Printable macro name. */
const char *macroName(MacroKind kind);

/**
 * Build the per-bit gate program realizing the macro in the family.
 *
 * Programs for Add/Sub consume kRegCin and define a carry-out; the
 * pipeline chains the carry across bit positions (arrays).
 */
BitProgram synthesizeMacro(MacroKind kind, const LogicFamily &family);

/** Initial carry-in value for a carry-chained macro (1 for Sub). */
bool initialCarry(MacroKind kind);

/**
 * Reference evaluation of a macro on integers confined to `bits` bits
 * (two's complement wraparound), used by tests to validate synthesis.
 */
u64 referenceMacro(MacroKind kind, u64 a, u64 b, int bits);

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_SYNTHESIS_H
