#include "digital/BitProgram.h"

#include "common/Logging.h"

namespace darth
{
namespace digital
{

bool
BitProgram::evaluate(bool a, bool b, bool cin, bool *cout) const
{
    std::vector<bool> regs(static_cast<std::size_t>(numRegs), false);
    regs[kRegA] = a;
    regs[kRegB] = b;
    regs[kRegCin] = cin;
    regs[kRegZero] = false;
    for (const auto &op : ops)
        regs[static_cast<std::size_t>(op.dst)] = applyPrim(
            op.prim, regs[static_cast<std::size_t>(op.srcA)],
            regs[static_cast<std::size_t>(op.srcB)]);
    if (cout != nullptr && carryOutReg >= 0)
        *cout = regs[static_cast<std::size_t>(carryOutReg)];
    if (resultReg < 0)
        darth_panic("BitProgram::evaluate: no result register");
    return regs[static_cast<std::size_t>(resultReg)];
}

int
BitProgramBuilder::emit(Prim prim, int a, int b)
{
    const int dst = fresh();
    emitTo(dst, prim, a, b);
    return dst;
}

void
BitProgramBuilder::emitTo(int dst, Prim prim, int a, int b)
{
    auto push = [this](Prim p, int d, int sa, int sb) {
        program_.ops.push_back({p, d, sa, sb});
    };

    if (family_.isNative(prim)) {
        push(prim, dst, a, b);
        return;
    }

    // NOR-only lowering (OSCAR). OR is native in OSCAR, so the
    // lowerings below may use both NOR and OR.
    switch (prim) {
      case Prim::Not:
        // NOT(a) = NOR(a, a)
        push(Prim::Nor, dst, a, a);
        break;
      case Prim::And: {
        // AND(a, b) = NOR(NOT a, NOT b)
        const int na = emit(Prim::Not, a, a);
        const int nb = emit(Prim::Not, b, b);
        push(Prim::Nor, dst, na, nb);
        break;
      }
      case Prim::Nand: {
        // NAND(a, b) = NOT(AND(a, b)) = OR(NOT a, NOT b)
        const int na = emit(Prim::Not, a, a);
        const int nb = emit(Prim::Not, b, b);
        push(Prim::Or, dst, na, nb);
        break;
      }
      case Prim::Xor: {
        // XOR(a, b) = NOR(NOR(a, b), AND(a, b))
        const int nor_ab = emit(Prim::Nor, a, b);
        const int and_ab = emit(Prim::And, a, b);
        push(Prim::Nor, dst, nor_ab, and_ab);
        break;
      }
      case Prim::Xnor: {
        // XNOR(a, b) = OR(NOR(a, b), AND(a, b))
        const int nor_ab = emit(Prim::Nor, a, b);
        const int and_ab = emit(Prim::And, a, b);
        push(Prim::Or, dst, nor_ab, and_ab);
        break;
      }
      case Prim::Copy:
        // COPY(a) = OR(a, zero)
        push(Prim::Or, dst, a, kRegZero);
        break;
      default:
        darth_panic("BitProgramBuilder: cannot lower ", primName(prim));
    }
}

} // namespace digital
} // namespace darth
