/**
 * @file
 * Per-bit gate programs: the µop sequences a digital PUM array runs.
 *
 * A macro instruction (ADD, XOR, ...) executed by a RACER pipeline is
 * realized bit-serially: array i of the pipeline runs the same short
 * gate program on bit position i of the operands (Figure 9c shows the
 * NOR expansion of one ADD step). BitProgram captures that per-bit
 * program as a straight-line sequence of logic-family primitives over
 * a small register file of scratch columns.
 *
 * Register convention: reg 0 = operand A bit, reg 1 = operand B bit,
 * reg 2 = carry-in (when the macro is carry-chained), reg 3 = constant
 * zero. Scratch registers follow. The program names its result register
 * and, for chained macros, its carry-out register.
 */

#ifndef DARTH_DIGITAL_BITPROGRAM_H
#define DARTH_DIGITAL_BITPROGRAM_H

#include <cstddef>
#include <vector>

#include "common/Types.h"
#include "digital/LogicFamily.h"

namespace darth
{
namespace digital
{

/** Well-known input register slots of a BitProgram. */
enum : int
{
    kRegA = 0,
    kRegB = 1,
    kRegCin = 2,
    kRegZero = 3,
    kFirstScratch = 4,
};

/** One primitive applied to two scratch/input registers. */
struct GateOp
{
    Prim prim;
    int dst;
    int srcA;
    int srcB;
};

/** Straight-line gate program for one bit position of a macro. */
struct BitProgram
{
    std::vector<GateOp> ops;
    int numRegs = kFirstScratch;
    int resultReg = -1;
    /** -1 when the macro has no carry chain. */
    int carryOutReg = -1;

    /** Number of in-array primitive operations (= cycles at 1/op). */
    std::size_t opCount() const { return ops.size(); }

    /** True when bit i+1 depends on bit i's carry-out. */
    bool hasCarryChain() const { return carryOutReg >= 0; }

    /**
     * Reference evaluation on scalar bits.
     *
     * @param a        Operand A bit.
     * @param b        Operand B bit.
     * @param cin      Carry-in bit (ignored unless used).
     * @param cout     Set to the carry-out when the program has one.
     * @return         The result bit.
     */
    bool evaluate(bool a, bool b, bool cin, bool *cout = nullptr) const;
};

/**
 * Small builder that lowers generic gates onto a logic family's
 * native primitives (NOR expansion for OSCAR).
 */
class BitProgramBuilder
{
  public:
    explicit BitProgramBuilder(const LogicFamily &family)
        : family_(family)
    {}

    /** Allocate a fresh scratch register. */
    int fresh() { return program_.numRegs++; }

    /** Emit dst = prim(a, b), lowering to native primitives. */
    int emit(Prim prim, int a, int b);

    /** Emit into a caller-chosen destination register. */
    void emitTo(int dst, Prim prim, int a, int b);

    /** Finish the program. */
    BitProgram
    finish(int result_reg, int carry_out_reg = -1)
    {
        program_.resultReg = result_reg;
        program_.carryOutReg = carry_out_reg;
        return std::move(program_);
    }

  private:
    /** Emit one native op (no lowering). */
    int
    native(Prim prim, int a, int b)
    {
        const int dst = fresh();
        program_.ops.push_back({prim, dst, a, b});
        return dst;
    }

    const LogicFamily &family_;
    BitProgram program_;
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_BITPROGRAM_H
