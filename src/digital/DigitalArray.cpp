#include "digital/DigitalArray.h"

#include "common/Logging.h"

namespace darth
{
namespace digital
{

DigitalArray::DigitalArray(std::size_t rows, std::size_t cols,
                           const reram::NoiseModel &noise, u64 seed)
    : cells_(rows, cols, reram::DeviceParams{}, noise, seed)
{
}

void
DigitalArray::writeColumn(std::size_t col, const BitVector &bits)
{
    if (bits.size() != rows())
        darth_panic("DigitalArray::writeColumn: got ", bits.size(),
                    " bits for ", rows(), " rows");
    for (std::size_t r = 0; r < rows(); ++r)
        cells_.program(r, col, bits.get(r) ? 1 : 0);
}

BitVector
DigitalArray::readColumn(std::size_t col) const
{
    BitVector out(rows());
    for (std::size_t r = 0; r < rows(); ++r)
        out.set(r, cells_.readCode(r, col) != 0);
    return out;
}

void
DigitalArray::writeBit(std::size_t row, std::size_t col, bool value)
{
    cells_.program(row, col, value ? 1 : 0);
}

bool
DigitalArray::readBit(std::size_t row, std::size_t col) const
{
    return cells_.readCode(row, col) != 0;
}

void
DigitalArray::columnNor(std::size_t dst, std::size_t a, std::size_t b)
{
    // The electrical NOR conditionally switches the (pre-SET) output
    // device toward RESET when either input conducts; the net effect
    // per row is dst = !(a || b).
    for (std::size_t r = 0; r < rows(); ++r) {
        const bool result = !(readBit(r, a) || readBit(r, b));
        cells_.program(r, dst, result ? 1 : 0);
    }
    ++opCount_;
}

void
DigitalArray::columnOr(std::size_t dst, std::size_t a, std::size_t b)
{
    for (std::size_t r = 0; r < rows(); ++r) {
        const bool result = readBit(r, a) || readBit(r, b);
        cells_.program(r, dst, result ? 1 : 0);
    }
    ++opCount_;
}

} // namespace digital
} // namespace darth
