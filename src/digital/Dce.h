/**
 * @file
 * Digital Compute Element: the digital half of a hybrid compute tile.
 *
 * A DCE bundles 64 RACER pipelines (Table 2) behind per-pipeline digital
 * issue queues. The DCE behaves as a SIMD vector unit whose lane count
 * is the pipeline width (Section 4.1); DARTH-PUM writes analog partial
 * products into pipeline rows and reduces them with ADD/SHIFT macros.
 */

#ifndef DARTH_DIGITAL_DCE_H
#define DARTH_DIGITAL_DCE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "common/Stats.h"
#include "digital/Pipeline.h"

namespace darth
{
namespace digital
{

/** Configuration of a digital compute element (Table 2 defaults). */
struct DceConfig
{
    std::size_t numPipelines = 64;
    PipelineConfig pipeline;
};

/** The digital half of an HCT: a bank of bit-pipelined pipelines. */
class Dce
{
  public:
    explicit Dce(const DceConfig &config, CostTally *tally = nullptr);

    const DceConfig &config() const { return cfg_; }

    std::size_t numPipelines() const { return pipes_.size(); }

    Pipeline &pipeline(std::size_t i);
    const Pipeline &pipeline(std::size_t i) const;

    /**
     * Run the same macro on a contiguous range of pipelines; they
     * execute concurrently (each has its own issue queue), so the
     * completion time is the max across pipelines.
     */
    Cycle execMacroAll(MacroKind kind, std::size_t first,
                      std::size_t count, std::size_t dst, std::size_t a,
                      std::size_t b, std::size_t bits, Cycle issue);

    /** Total in-array ops across all pipelines. */
    u64 opCount() const;

  private:
    DceConfig cfg_;
    std::vector<std::unique_ptr<Pipeline>> pipes_;
};

} // namespace digital
} // namespace darth

#endif // DARTH_DIGITAL_DCE_H
