#include "digital/LogicFamily.h"

#include "common/Logging.h"

namespace darth
{
namespace digital
{

const char *
primName(Prim prim)
{
    switch (prim) {
      case Prim::Nor: return "NOR";
      case Prim::Or: return "OR";
      case Prim::And: return "AND";
      case Prim::Nand: return "NAND";
      case Prim::Xor: return "XOR";
      case Prim::Xnor: return "XNOR";
      case Prim::Not: return "NOT";
      case Prim::Copy: return "COPY";
    }
    return "?";
}

bool
applyPrim(Prim prim, bool a, bool b)
{
    switch (prim) {
      case Prim::Nor: return !(a || b);
      case Prim::Or: return a || b;
      case Prim::And: return a && b;
      case Prim::Nand: return !(a && b);
      case Prim::Xor: return a != b;
      case Prim::Xnor: return a == b;
      case Prim::Not: return !a;
      case Prim::Copy: return a;
    }
    darth_panic("applyPrim: unknown primitive");
}

} // namespace digital
} // namespace darth
