// Determinism-lint fixture: every function seeds exactly one rule.
// This file is never compiled (the .cxx extension keeps it out of
// the test glob); DeterminismLintTest asserts the lint reports each
// rule id below and exits non-zero.

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture
{

// unordered-container: iteration order feeds a scheduling decision.
int
sumInUnorderedOrder(const std::unordered_map<int, int> &load)
{
    int pick = 0;
    for (const auto &entry : load)
        pick = pick * 31 + entry.second;
    std::unordered_set<int> seen;
    return pick + static_cast<int>(seen.size());
}

// pointer-keyed-order: ASLR and allocator state decide who is first.
int
firstByAddress(const std::map<const int *, int> &queue)
{
    std::set<char *> owners;
    return queue.empty() ? static_cast<int>(owners.size())
                         : queue.begin()->second;
}

// wall-clock: host time leaking into simulated timing.
long
stampArrival()
{
    const auto now = std::chrono::steady_clock::now();
    return now.time_since_epoch().count() + time(nullptr);
}

// raw-rand: environment-dependent entropy.
int
jitter()
{
    std::random_device entropy;
    return static_cast<int>(entropy()) + rand();
}

// std-engine: stream differs across standard-library versions (and
// this one is unseeded on top of it).
int
pickVictim(int n)
{
    std::mt19937 gen;
    std::uniform_int_distribution<int> dist(0, n);
    return dist(gen);
}

// static-mutable-local: hidden cross-call state, racy under the
// future per-chip worker threads.
int
nextTicket()
{
    static int counter = 0;
    return ++counter;
}

} // namespace fixture
