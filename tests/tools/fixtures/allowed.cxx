// Determinism-lint fixture: audited violations. With the sibling
// allow_fixture.txt (and the inline marker below) the lint reports
// nothing; with an empty allowlist it must flag both.

#include <unordered_map>

namespace fixture
{

struct ShapeCache
{
    // Audited: populated at construction, looked up by exact key,
    // never iterated — order cannot leak.
    std::unordered_map<int, int> byShape; // determinism-lint: allow(unordered-container) lookup-only cache

    int
    hits(int shape) const
    {
        const auto it = byShape.find(shape);
        return it == byShape.end() ? 0 : it->second;
    }
};

// Covered by allow_fixture.txt (static-mutable-local entry).
int
debugCallCount()
{
    static int calls = 0;
    return ++calls;
}

} // namespace fixture
