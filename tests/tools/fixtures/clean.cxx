// Determinism-lint fixture: the deterministic counterparts of
// violations.cxx. The lint must report nothing here — including for
// the decoy prose below, which mentions std::chrono and rand() only
// inside comments and string literals.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fixture
{

// Ordered iteration: std::map walks keys in a stable order.
int
sumInKeyOrder(const std::map<int, int> &load)
{
    int pick = 0;
    for (const auto &entry : load)
        pick = pick * 31 + entry.second;
    return pick;
}

// Stable-id keys instead of pointer keys.
int
firstById(const std::map<std::uint64_t, int> &queue)
{
    return queue.empty() ? 0 : queue.begin()->second;
}

// Simulated time flows in as a parameter, never read from the host.
std::uint64_t
stampArrival(std::uint64_t now_cycles)
{
    return now_cycles + 1;
}

// Explicitly seeded generator (the darth::Rng discipline).
struct SeededLcg
{
    explicit SeededLcg(std::uint64_t seed) : state(seed) {}
    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return state;
    }
    std::uint64_t state;
};

// Static *const* locals are fine: initialized once, never mutated.
const std::string &
rngAdvice()
{
    static const std::string advice =
        "never call rand() or std::chrono outside a bench";
    return advice;
}

} // namespace fixture
