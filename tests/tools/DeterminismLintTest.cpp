/**
 * @file
 * Harness for tools/determinism_lint.py: proves the lint catches
 * every seeded violation class in the fixture files, honours the
 * allowlist (file and inline forms), stays quiet on clean code, and
 * — the gating property — reports zero unallowlisted findings on the
 * real src/runtime, src/serve, and src/apps trees.
 *
 * The lint is a python3 script; when no python3 is on PATH (not the
 * case in CI or the dev image) the tests skip rather than fail.
 */

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

namespace
{

#ifndef DARTH_SOURCE_DIR
#error "DARTH_SOURCE_DIR must point at the repository root"
#endif

const std::string kRoot = DARTH_SOURCE_DIR;
const std::string kLint = kRoot + "/tools/determinism_lint.py";
const std::string kFixtures = kRoot + "/tests/tools/fixtures";

struct LintResult
{
    int exitCode = -1;
    std::string output;
};

bool
havePython()
{
    return std::system("python3 --version > /dev/null 2>&1") == 0;
}

/** Run the lint with the given arguments; stderr folds into stdout
 *  so the summary line is visible to assertions too. */
LintResult
runLint(const std::string &args)
{
    const std::string cmd =
        "python3 " + kLint + " " + args + " 2>&1";
    LintResult result;
    FILE *pipe = popen(cmd.c_str(), "r");
    if (pipe == nullptr)
        return result;
    std::array<char, 512> buf;
    while (std::fgets(buf.data(), buf.size(), pipe) != nullptr)
        result.output += buf.data();
    const int status = pclose(pipe);
    result.exitCode =
        WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

#define SKIP_WITHOUT_PYTHON()                                        \
    do {                                                             \
        if (!havePython())                                           \
            GTEST_SKIP() << "python3 not on PATH";                   \
    } while (0)

TEST(DeterminismLint, FlagsEverySeededViolationClass)
{
    SKIP_WITHOUT_PYTHON();
    const LintResult r = runLint("--allowlist /dev/null " +
                                 kFixtures + "/violations.cxx");
    EXPECT_EQ(r.exitCode, 1) << r.output;
    // One hit per rule class seeded in the fixture.
    EXPECT_NE(r.output.find("[unordered-container]"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[pointer-keyed-order]"),
              std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[wall-clock]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[raw-rand]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[std-engine]"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("[static-mutable-local]"),
              std::string::npos)
        << r.output;
}

TEST(DeterminismLint, FindingsNameFileAndLine)
{
    SKIP_WITHOUT_PYTHON();
    const LintResult r = runLint("--allowlist /dev/null " +
                                 kFixtures + "/violations.cxx");
    // The unordered iteration feeding order sits on a known line of
    // the fixture; pin one exact location so reports stay precise.
    EXPECT_NE(r.output.find("violations.cxx:60: [std-engine]"),
              std::string::npos)
        << r.output;
}

TEST(DeterminismLint, QuietOnCleanCode)
{
    SKIP_WITHOUT_PYTHON();
    const LintResult r = runLint("--allowlist /dev/null " +
                                 kFixtures + "/clean.cxx");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("clean"), std::string::npos) << r.output;
}

TEST(DeterminismLint, CommentsAndStringsDoNotTrip)
{
    SKIP_WITHOUT_PYTHON();
    // clean.cxx mentions rand() and std::chrono in comments and a
    // string literal; a finding there would be a stripping bug.
    const LintResult r = runLint("--allowlist /dev/null " +
                                 kFixtures + "/clean.cxx");
    EXPECT_EQ(r.output.find("[wall-clock]"), std::string::npos)
        << r.output;
    EXPECT_EQ(r.output.find("[raw-rand]"), std::string::npos)
        << r.output;
}

TEST(DeterminismLint, AllowlistSuppressesAuditedFindings)
{
    SKIP_WITHOUT_PYTHON();
    const LintResult with =
        runLint("--allowlist " + kFixtures + "/allow_fixture.txt " +
                kFixtures + "/allowed.cxx");
    EXPECT_EQ(with.exitCode, 0) << with.output;

    // The same file without the allowlist must fail: the pass is
    // doing the suppression, not the rules going soft.
    const LintResult without = runLint(
        "--allowlist /dev/null " + kFixtures + "/allowed.cxx");
    EXPECT_EQ(without.exitCode, 1) << without.output;
    EXPECT_NE(without.output.find("[static-mutable-local]"),
              std::string::npos)
        << without.output;
    // The inline allow(unordered-container) marker keeps the member
    // declaration clean even with no allowlist file at all.
    EXPECT_EQ(without.output.find("byShape"), std::string::npos)
        << without.output;
}

TEST(DeterminismLint, RealTreeHasNoUnallowlistedFindings)
{
    SKIP_WITHOUT_PYTHON();
    // The acceptance bar: src/runtime, src/serve, and src/apps are
    // clean under the checked-in allowlist.
    const LintResult r = runLint("--root " + kRoot);
    EXPECT_EQ(r.exitCode, 0) << r.output;
}

} // namespace
