/**
 * @file
 * Tests for journal-driven replay: a recorded serve run — including
 * the acceptance scenario, stage-granular admission of a mixed
 * mvm+inference trace on a 4-chip heterogeneous pool — must
 * reconstruct bit-identically from its journal alone, divergence
 * must surface as a named first mismatch, and malformed journals
 * must be rejected at parse time.
 */

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "journal/Replayer.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace journal
{
namespace
{

using serve::TenantSpec;
using serve::WorkloadKind;

/** The acceptance scenario: stage-granular admission of a bursty
 *  mvm+inference mix on a mixed 2 SAR + 2 ramp pool. */
ServeRunSetup
heteroStageSetup()
{
    ServeRunSetup setup;
    setup.uniformPool = false;
    setup.slots = {{SlotKind::Sar, 8, 1.0},
                   {SlotKind::Sar, 8, 1.0},
                   {SlotKind::Ramp, 8, 1.0},
                   {SlotKind::Ramp, 8, 1.0}};
    setup.placement = serve::PlacementPolicy::CostAware;
    setup.trafficSeed = 909;
    setup.horizon = 25000;
    setup.admission.queueDepth = 2;
    setup.admission.qos = serve::QosPolicy::WeightedFair;
    setup.admission.overflow = serve::OverflowPolicy::Block;
    setup.admission.granularity = serve::Granularity::Stage;

    setup.tenants.resize(3);
    setup.tenants[0].name = "cnn_infer";
    setup.tenants[0].kind = WorkloadKind::CnnInfer;
    setup.tenants[0].weight = 2.0;
    setup.tenants[0].ratePerKns = 0.1;
    setup.tenants[0].burst = {6000, 6000};
    setup.tenants[0].slo = {30000, 0.99};
    setup.tenants[1].name = "cnn_mvm";
    setup.tenants[1].kind = WorkloadKind::Cnn;
    setup.tenants[1].weight = 4.0;
    setup.tenants[1].ratePerKns = 2.0;
    setup.tenants[1].slo = {1, 0.9};
    setup.tenants[2].name = "gf_wide";
    setup.tenants[2].kind = WorkloadKind::GfWide;
    setup.tenants[2].weight = 1.0;
    setup.tenants[2].ratePerKns = 1.0;
    return setup;
}

TEST(ReplayerTest, HeteroStageRunReplaysBitIdentically)
{
    const ServeRunSetup setup = heteroStageSetup();
    const ServeRunRecord rec = recordServeRun(setup);
    ASSERT_GT(rec.report.completed, 0u);
    ASSERT_EQ(rec.report.chips.size(), 4u);

    // The scenario exercises what it claims: inference stages
    // beyond stage 0 completed (stage granularity on a mixed trace).
    bool staged = false;
    for (const JournalEvent &e : rec.journal.events())
        staged = staged ||
                 (e.kind == EventKind::StageComplete && e.b > 0);
    EXPECT_TRUE(staged);

    // Durable round trip, then replay from the journal alone.
    std::stringstream file;
    rec.journal.writeBinary(file);
    const Journal reread = Journal::readBinary(file);

    const Replayer replayer(reread);
    const Replayer::Result res = replayer.replay();
    EXPECT_TRUE(res.identical) << res.detail;
    EXPECT_EQ(res.firstMismatch, rec.journal.size());
    EXPECT_TRUE(res.detail.empty()) << res.detail;
    EXPECT_EQ(res.journal.chainChecksum(),
              rec.journal.chainChecksum());

    // The replayed report reproduces the recorded run's results —
    // every completion cycle (hence the makespan) and the FNV
    // output checksum.
    EXPECT_EQ(res.report.completed, rec.report.completed);
    EXPECT_EQ(res.report.rejected, rec.report.rejected);
    EXPECT_EQ(res.report.makespanNs, rec.report.makespanNs);
    EXPECT_EQ(res.report.outputChecksum, rec.report.outputChecksum);
}

TEST(ReplayerTest, ParsesSetupAndTraceBack)
{
    const ServeRunSetup setup = heteroStageSetup();
    const ServeRunRecord rec = recordServeRun(setup);
    const Replayer replayer(rec.journal);

    const ServeRunSetup &parsed = replayer.setup();
    EXPECT_EQ(parsed.uniformPool, setup.uniformPool);
    ASSERT_EQ(parsed.slots.size(), setup.slots.size());
    for (std::size_t i = 0; i < setup.slots.size(); ++i) {
        EXPECT_EQ(parsed.slots[i].kind, setup.slots[i].kind);
        EXPECT_EQ(parsed.slots[i].hcts, setup.slots[i].hcts);
        EXPECT_EQ(parsed.slots[i].clockGHz, setup.slots[i].clockGHz);
    }
    EXPECT_EQ(parsed.placement, setup.placement);
    EXPECT_EQ(parsed.trafficSeed, setup.trafficSeed);
    EXPECT_EQ(parsed.horizon, setup.horizon);
    EXPECT_EQ(parsed.admission.queueDepth,
              setup.admission.queueDepth);
    EXPECT_EQ(parsed.admission.qos, setup.admission.qos);
    EXPECT_EQ(parsed.admission.granularity,
              setup.admission.granularity);
    ASSERT_EQ(parsed.tenants.size(), setup.tenants.size());
    for (std::size_t t = 0; t < setup.tenants.size(); ++t) {
        EXPECT_EQ(parsed.tenants[t].name, setup.tenants[t].name);
        EXPECT_EQ(parsed.tenants[t].kind, setup.tenants[t].kind);
        EXPECT_EQ(parsed.tenants[t].weight, setup.tenants[t].weight);
        EXPECT_EQ(parsed.tenants[t].ratePerKns,
                  setup.tenants[t].ratePerKns);
        EXPECT_EQ(parsed.tenants[t].burst.onNs,
                  setup.tenants[t].burst.onNs);
        EXPECT_EQ(parsed.tenants[t].slo.latencyTargetNs,
                  setup.tenants[t].slo.latencyTargetNs);
        EXPECT_EQ(parsed.tenants[t].slo.targetAvailability,
                  setup.tenants[t].slo.targetAvailability);
    }

    // The arrival trace reconstructs exactly.
    ASSERT_EQ(replayer.trace().size(), rec.trace.size());
    for (std::size_t i = 0; i < rec.trace.size(); ++i) {
        EXPECT_EQ(replayer.trace()[i].arrival,
                  rec.trace[i].arrival);
        EXPECT_EQ(replayer.trace()[i].tenant, rec.trace[i].tenant);
        EXPECT_EQ(replayer.trace()[i].input, rec.trace[i].input);
    }
}

TEST(ReplayerTest, UniformPoolRoundTrips)
{
    ServeRunSetup setup;
    setup.uniformPool = true;
    setup.slots.assign(2, PoolSlotSetup{SlotKind::Uniform, 2, 1.0});
    setup.trafficSeed = 11;
    setup.horizon = 15000;
    setup.admission.queueDepth = 2;
    setup.tenants.resize(2);
    setup.tenants[0].name = "micro0";
    setup.tenants[0].kind = WorkloadKind::Micro;
    setup.tenants[0].ratePerKns = 3.0;
    setup.tenants[1].name = "micro1";
    setup.tenants[1].kind = WorkloadKind::Micro;
    setup.tenants[1].ratePerKns = 3.0;

    const ServeRunRecord rec = recordServeRun(setup);
    ASSERT_GT(rec.report.completed, 0u);
    const Replayer replayer(rec.journal);
    const Replayer::Result res = replayer.replay();
    EXPECT_TRUE(res.identical) << res.detail;
}

TEST(ReplayerTest, TamperedArrivalDiverges)
{
    ServeRunSetup setup;
    setup.slots = {PoolSlotSetup{SlotKind::Uniform, 2, 1.0}};
    setup.trafficSeed = 5;
    setup.horizon = 8000;
    setup.tenants.resize(1);
    setup.tenants[0].name = "micro";
    setup.tenants[0].kind = WorkloadKind::Micro;
    setup.tenants[0].ratePerKns = 2.0;
    const ServeRunRecord rec = recordServeRun(setup);

    // Rebuild the journal with one arrival's input perturbed: the
    // replay runs (the trace parses fine) but the re-recorded
    // stream diverges at that arrival, named as the first mismatch.
    Journal tampered;
    std::size_t arrival_index = 0;
    bool done = false;
    for (std::size_t i = 0; i < rec.journal.size(); ++i) {
        JournalEvent e = rec.journal.event(i);
        if (!done && e.kind == EventKind::Arrival) {
            e.values[0] ^= 1;
            arrival_index = i;
            done = true;
        }
        tampered.append(std::move(e));
    }
    ASSERT_TRUE(done);

    const Replayer replayer(tampered);
    const Replayer::Result res = replayer.replay();
    EXPECT_FALSE(res.identical);
    EXPECT_EQ(res.firstMismatch, arrival_index);
    EXPECT_FALSE(res.detail.empty());
}

TEST(ReplayerTest, RejectsMalformedJournals)
{
    // Empty journal: no run_begin.
    EXPECT_THROW(Replayer{Journal{}}, std::runtime_error);

    // Unsupported setup version.
    {
        Journal jr;
        JournalEvent begin;
        begin.kind = EventKind::RunBegin;
        begin.a = ServeRunSetup::kSetupVersion + 1;
        begin.values = {1, 1, 1, 0};
        jr.append(std::move(begin));
        EXPECT_THROW(Replayer{std::move(jr)}, std::runtime_error);
    }

    // Truncated before the trace: header only, no trace_begin.
    {
        Journal jr;
        JournalEvent begin;
        begin.kind = EventKind::RunBegin;
        begin.a = ServeRunSetup::kSetupVersion;
        begin.values = {50000, 1, 1, 0};
        jr.append(std::move(begin));
        JournalEvent chip;
        chip.kind = EventKind::PoolChip;
        chip.b = static_cast<u64>(SlotKind::Uniform);
        chip.c = 2;
        chip.d = doubleBits(1.0);
        jr.append(std::move(chip));
        EXPECT_THROW(Replayer{std::move(jr)}, std::runtime_error);
    }

    // A trace_begin whose announced count the journal cannot honor.
    {
        ServeRunSetup setup;
        setup.slots = {PoolSlotSetup{SlotKind::Uniform, 2, 1.0}};
        setup.tenants.resize(1);
        setup.tenants[0].name = "micro";
        setup.tenants[0].kind = WorkloadKind::Micro;
        setup.horizon = 4000;
        const ServeRunRecord rec = recordServeRun(setup);
        Journal truncated;
        for (std::size_t i = 0; i < rec.journal.size(); ++i) {
            const JournalEvent &e = rec.journal.event(i);
            if (e.kind == EventKind::Arrival)
                continue;   // drop every arrival
            truncated.append(e);
        }
        ASSERT_FALSE(rec.trace.empty());
        EXPECT_THROW(Replayer{std::move(truncated)},
                     std::runtime_error);
    }
}

TEST(ReplayerTest, PoolConfigValidatesSlots)
{
    ServeRunSetup setup;
    setup.slots.clear();
    EXPECT_THROW(setup.poolConfig(), std::invalid_argument);

    setup.slots = {PoolSlotSetup{SlotKind::Uniform, 0, 1.0}};
    EXPECT_THROW(setup.poolConfig(), std::invalid_argument);

    setup.slots = {PoolSlotSetup{SlotKind::Uniform, 2, -1.0}};
    EXPECT_THROW(setup.poolConfig(), std::invalid_argument);

    // A uniform pool's slots must be identical.
    setup.uniformPool = true;
    setup.slots = {PoolSlotSetup{SlotKind::Sar, 8, 1.0},
                   PoolSlotSetup{SlotKind::Ramp, 8, 1.0}};
    EXPECT_THROW(setup.poolConfig(), std::invalid_argument);

    // Heterogeneous composition of the same slots is buildable.
    setup.uniformPool = false;
    const serve::PoolConfig cfg = setup.poolConfig();
    ASSERT_EQ(cfg.chips.size(), 2u);
    EXPECT_EQ(cfg.chips[0].name, "sar");
    EXPECT_EQ(cfg.chips[1].name, "ramp");
}

} // namespace
} // namespace journal
} // namespace darth
