/**
 * @file
 * Tests for the append-only event journal: chained checksums, binary
 * round trips (write -> read -> re-write byte-identical), corruption
 * detection on flipped bytes and truncation, and the JSONL export.
 */

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"

namespace darth
{
namespace journal
{
namespace
{

JournalEvent
sampleEvent(std::size_t i)
{
    JournalEvent e;
    e.kind = static_cast<EventKind>(i % 14);
    e.cycle = 100 * i;
    e.a = i;
    e.b = i * 3 + 1;
    e.c = ~u64{0} - i;
    e.d = doubleBits(0.25 * static_cast<double>(i));
    if (i % 3 == 0)
        e.note = "event-" + std::to_string(i);
    if (i % 2 == 0)
        e.values = {static_cast<i64>(i), -static_cast<i64>(i), 42};
    return e;
}

Journal
sampleJournal(std::size_t events = 20)
{
    Journal jr;
    for (std::size_t i = 0; i < events; ++i)
        jr.append(sampleEvent(i));
    return jr;
}

TEST(JournalTest, AppendStampsChainedChecksums)
{
    Journal jr;
    EXPECT_TRUE(jr.empty());
    const u64 empty_chain = jr.chainChecksum();

    jr.append(sampleEvent(0));
    jr.append(sampleEvent(1));
    ASSERT_EQ(jr.size(), 2u);
    // The chain digest is the last record's checksum and moves with
    // every append.
    EXPECT_NE(jr.chainChecksum(), empty_chain);
    EXPECT_EQ(jr.chainChecksum(), jr.recordChecksum(1));
    EXPECT_NE(jr.recordChecksum(0), jr.recordChecksum(1));

    // Same events, same chain; any payload difference diverges it.
    Journal same;
    same.append(sampleEvent(0));
    same.append(sampleEvent(1));
    EXPECT_EQ(same.chainChecksum(), jr.chainChecksum());
    EXPECT_TRUE(same == jr);

    Journal different;
    different.append(sampleEvent(0));
    JournalEvent e = sampleEvent(1);
    e.c ^= 1;
    different.append(std::move(e));
    EXPECT_NE(different.chainChecksum(), jr.chainChecksum());
    EXPECT_TRUE(different != jr);
}

TEST(JournalTest, BinaryRoundTripIsByteIdentical)
{
    const Journal jr = sampleJournal();

    std::stringstream first;
    jr.writeBinary(first);
    std::stringstream reread_stream(first.str());
    const Journal reread = Journal::readBinary(reread_stream);

    // The parsed journal carries the identical history...
    ASSERT_EQ(reread.size(), jr.size());
    for (std::size_t i = 0; i < jr.size(); ++i) {
        EXPECT_EQ(reread.event(i), jr.event(i)) << "event " << i;
        EXPECT_EQ(reread.recordChecksum(i), jr.recordChecksum(i));
    }
    EXPECT_TRUE(reread == jr);

    // ...and re-serializes byte-identically.
    std::stringstream second;
    reread.writeBinary(second);
    EXPECT_EQ(first.str(), second.str());
}

TEST(JournalTest, EmptyJournalRoundTrips)
{
    Journal jr;
    std::stringstream out;
    jr.writeBinary(out);
    const Journal reread = Journal::readBinary(out);
    EXPECT_TRUE(reread.empty());
    EXPECT_EQ(reread.chainChecksum(), jr.chainChecksum());
}

TEST(JournalTest, DetectsEveryFlippedByte)
{
    // A small journal so the whole file is exhaustively corruptible.
    Journal jr;
    jr.append(sampleEvent(1));
    jr.append(sampleEvent(2));
    std::stringstream out;
    jr.writeBinary(out);
    const std::string good = out.str();

    // Every single-byte flip anywhere in the file must be caught:
    // in the header, a record's encoding, its length, or its stored
    // checksum. (Length corruption may legitimately surface as any
    // std::runtime_error — e.g. a short read — but never parse.)
    for (std::size_t i = 0; i < good.size(); ++i) {
        std::string bad = good;
        bad[i] = static_cast<char>(bad[i] ^ 0x40);
        std::stringstream in(bad);
        EXPECT_THROW(Journal::readBinary(in), std::runtime_error)
            << "flip at byte " << i << " went undetected";
    }
}

TEST(JournalTest, DetectsTruncation)
{
    const Journal jr = sampleJournal(4);
    std::stringstream out;
    jr.writeBinary(out);
    const std::string good = out.str();

    for (const std::size_t keep :
         {good.size() - 1, good.size() / 2, std::size_t{3}}) {
        std::stringstream in(good.substr(0, keep));
        EXPECT_THROW(Journal::readBinary(in), std::runtime_error)
            << "truncation to " << keep << " bytes went undetected";
    }
}

TEST(JournalTest, ErrorNamesTheFirstCorruptRecord)
{
    const Journal jr = sampleJournal(3);
    std::stringstream out;
    jr.writeBinary(out);
    std::string bad = out.str();
    // Flip the last byte: with chained checksums only the final
    // record (index 2) can be the first to fail.
    bad.back() = static_cast<char>(bad.back() ^ 0x01);
    std::stringstream in(bad);
    try {
        Journal::readBinary(in);
        FAIL() << "corrupt journal parsed";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("record 2"),
                  std::string::npos)
            << "error does not name the corrupt record: "
            << err.what();
    }
}

TEST(JournalTest, RejectsWrongMagicAndVersion)
{
    const Journal jr = sampleJournal(1);
    std::stringstream out;
    jr.writeBinary(out);
    std::string file = out.str();

    std::string bad_magic = file;
    bad_magic[0] = 'X';
    std::stringstream in1(bad_magic);
    EXPECT_THROW(Journal::readBinary(in1), std::runtime_error);

    // The u32 version sits right after the 8-byte magic.
    std::string bad_version = file;
    bad_version[8] = static_cast<char>(bad_version[8] + 1);
    std::stringstream in2(bad_version);
    EXPECT_THROW(Journal::readBinary(in2), std::runtime_error);
}

TEST(JournalTest, JsonlExportCarriesEveryEvent)
{
    const Journal jr = sampleJournal(14);
    std::stringstream out;
    jr.writeJsonl(out);
    const std::string text = out.str();

    // One header line plus one line per event.
    std::size_t lines = 0;
    for (char c : text)
        lines += c == '\n';
    EXPECT_EQ(lines, jr.size() + 1);
    EXPECT_NE(text.find("\"format\":\"darth-journal\""),
              std::string::npos);
    EXPECT_NE(text.find("\"chain_checksum\""), std::string::npos);
    // Every kind name appears (the sample covers all 14 kinds).
    for (std::size_t k = 0; k < 14; ++k)
        EXPECT_NE(
            text.find(std::string("\"kind\":\"") +
                      eventKindName(static_cast<EventKind>(k))),
            std::string::npos)
            << eventKindName(static_cast<EventKind>(k));
}

TEST(JournalTest, FileRoundTripAndMissingFileThrow)
{
    const Journal jr = sampleJournal(5);
    const std::string path =
        ::testing::TempDir() + "journal_test_roundtrip.jnl";
    jr.writeBinaryFile(path);
    const Journal reread = Journal::readBinaryFile(path);
    EXPECT_TRUE(reread == jr);

    EXPECT_THROW(
        Journal::readBinaryFile(::testing::TempDir() +
                                "journal_test_does_not_exist.jnl"),
        std::runtime_error);
}

} // namespace
} // namespace journal
} // namespace darth
