/**
 * @file
 * Tests for the segmented on-disk journal (journal/Segment.h): the
 * FNV checksum chain must be continuous across segment boundaries
 * (the last record of the last segment carries the same
 * chainChecksum() a monolithic journal of the history would),
 * corruption must localize to a named segment, compaction must
 * preserve replay bit-identity, and a streamed segmented recording
 * must replay byte-identically to its live run — stats, checksums,
 * and chain.
 */

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "journal/Replayer.h"
#include "journal/Segment.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace journal
{
namespace
{

using serve::TenantSpec;
using serve::WorkloadKind;

/** A fresh per-test directory under gtest's temp root. */
std::string
scratchDir(const std::string &name)
{
    const std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) /
        ("journal_segment_test_" + name);
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** A small mixed scenario: micro tenants plus one staged inference
 *  tenant on a 2-chip pool, enough events to span several tiny
 *  segments. */
ServeRunSetup
smallSetup()
{
    ServeRunSetup setup;
    setup.uniformPool = false;
    setup.slots = {{SlotKind::Uniform, 8, 1.0},
                   {SlotKind::Uniform, 8, 2.0}};
    setup.placement = serve::PlacementPolicy::LeastLoaded;
    setup.trafficSeed = 4242;
    setup.horizon = 4000;
    setup.admission.queueDepth = 2;
    setup.admission.qos = serve::QosPolicy::WeightedFair;
    setup.admission.overflow = serve::OverflowPolicy::Block;

    setup.tenants.resize(3);
    setup.tenants[0].name = "micro_a";
    setup.tenants[0].kind = WorkloadKind::Micro;
    setup.tenants[0].weight = 2.0;
    setup.tenants[0].ratePerKns = 3.0;
    setup.tenants[1].name = "micro_b";
    setup.tenants[1].kind = WorkloadKind::Micro;
    setup.tenants[1].ratePerKns = 2.0;
    setup.tenants[2].name = "cnn_infer";
    setup.tenants[2].kind = WorkloadKind::CnnInfer;
    setup.tenants[2].ratePerKns = 0.2;
    return setup;
}

/** Stream-record smallSetup() into `dir` with tiny segments (so the
 *  run is guaranteed to rotate) and return the live report. */
serve::ServeReport
recordSegmented(const std::string &dir, std::size_t segment_bytes,
                std::size_t *segments_out = nullptr,
                u64 *chain_out = nullptr)
{
    const ServeRunSetup setup = smallSetup();
    serve::TraceStream source(setup.trafficSeed, setup.tenants,
                              setup.horizon);
    Journal jr;
    SegmentWriter writer(dir, segment_bytes);
    jr.attachSink(&writer, /*retainEvents*/ false);
    const serve::ServeReport report =
        recordServeRunStream(setup, source, jr);
    writer.finish();
    if (segments_out != nullptr)
        *segments_out = writer.segments();
    if (chain_out != nullptr)
        *chain_out = jr.chainChecksum();
    return report;
}

TEST(JournalSegment, ChainContinuousAcrossSegmentBoundaries)
{
    // The same streamed run, recorded monolithically (retained, no
    // sink) and into tiny on-disk segments: the segment chain must
    // land on the monolithic chainChecksum, record for record.
    const ServeRunSetup setup = smallSetup();
    serve::TraceStream mono_source(setup.trafficSeed, setup.tenants,
                                   setup.horizon);
    Journal mono;
    recordServeRunStream(setup, mono_source, mono);
    ASSERT_GT(mono.size(), 0u);

    const std::string dir = scratchDir("chain");
    std::size_t segments = 0;
    u64 chain = 0;
    recordSegmented(dir, 512, &segments, &chain);
    ASSERT_GE(segments, 2u)
        << "scenario too small to cross a segment boundary";
    EXPECT_EQ(chain, mono.chainChecksum());

    // The reader re-verifies every header and record checksum on
    // the way through and must agree on the chain and count.
    SegmentReader reader(dir);
    JournalEvent e;
    while (reader.next(e)) {
    }
    EXPECT_GE(reader.segmentsRead(), 2u);
    EXPECT_EQ(reader.recordIndex(), mono.size());
    EXPECT_EQ(reader.chainChecksum(), mono.chainChecksum());

    // Materialized, the segment directory is the monolithic journal.
    const Journal reread = readSegmentedJournal(dir);
    EXPECT_TRUE(reread == mono);
}

TEST(JournalSegment, MidSegmentCorruptionNamesTheSegment)
{
    const std::string dir = scratchDir("corrupt");
    std::size_t segments = 0;
    recordSegmented(dir, 512, &segments);
    ASSERT_GE(segments, 2u);

    // Flip one byte in the middle of segment 1's records.
    const std::string victim = segmentFileName(dir, 1);
    std::fstream f(victim,
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.is_open());
    f.seekg(0, std::ios::end);
    const std::streamoff size = f.tellg();
    ASSERT_GT(size, 80);
    f.seekp(size / 2);
    char byte = 0;
    f.seekg(size / 2);
    f.read(&byte, 1);
    f.seekp(size / 2);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
    f.close();

    try {
        readSegmentedJournal(dir);
        FAIL() << "corruption in segment 1 went undetected";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("segment 1"),
                  std::string::npos)
            << "error does not localize the segment: " << err.what();
    }
}

TEST(JournalSegment, WriterRefusesPreexistingSegments)
{
    const std::string dir = scratchDir("refuse");
    recordSegmented(dir, 1u << 20);
    EXPECT_THROW(SegmentWriter second(dir), std::runtime_error);
}

TEST(JournalSegment, SegmentedReplayIsBitIdenticalToLiveRun)
{
    const std::string dir = scratchDir("replay");
    std::size_t segments = 0;
    u64 chain = 0;
    const serve::ServeReport live =
        recordSegmented(dir, 512, &segments, &chain);
    ASSERT_GT(live.completed, 0u);

    const SegmentReplayResult res = replaySegments(dir);
    EXPECT_TRUE(res.identical) << res.detail;
    EXPECT_EQ(res.recordedChain, chain);
    EXPECT_EQ(res.replayedChain, chain);
    // Replay reproduces the run, not just the records: checksum and
    // counters are the live run's.
    EXPECT_EQ(res.report.outputChecksum, live.outputChecksum);
    EXPECT_EQ(res.report.completed, live.completed);
    EXPECT_EQ(res.report.rejected, live.rejected);
    EXPECT_EQ(res.report.makespanNs, live.makespanNs);
}

TEST(JournalSegment, CompactionPreservesReplayBitIdentity)
{
    const std::string src = scratchDir("compact_src");
    const std::string dst = scratchDir("compact_dst");
    const serve::ServeReport live = recordSegmented(src, 512);

    const CompactResult comp = compactSegments(src, dst, 512);
    ASSERT_GT(comp.inputRecords, 0u);
    // Per-request event groups collapse into single summaries.
    EXPECT_LT(comp.outputRecords, comp.inputRecords);

    // The compacted recording still replays bit-identically: the
    // replayed live stream, compacted on the fly, must reproduce the
    // compacted chain byte for byte.
    const SegmentReplayResult res = replaySegments(dst);
    EXPECT_TRUE(res.identical) << res.detail;
    EXPECT_EQ(res.recordedChain, comp.chainChecksum);
    EXPECT_EQ(res.report.outputChecksum, live.outputChecksum);
    EXPECT_EQ(res.report.completed, live.completed);

    // And the compacted journal still parses into a Replayer (the
    // RequestSummary records carry each request's arrival + input).
    const Replayer replayer(readSegmentedJournal(dst));
    EXPECT_TRUE(replayer.streamed());
    EXPECT_EQ(replayer.trace().size(),
              live.completed + live.rejected);
}

TEST(JournalSegment, StreamedRecordingMatchesVectorRecording)
{
    // The streamed record path must emit the event sequence the
    // vector path emits — same records, same order, same chain —
    // except for TraceBegin, whose count field is the streamed
    // sentinel (the count is unknown when the header is written).
    const ServeRunSetup setup = smallSetup();
    const ServeRunRecord vec = recordServeRun(setup);

    serve::VectorSource source(vec.trace);
    Journal streamed;
    const serve::ServeReport report =
        recordServeRunStream(setup, source, streamed);

    EXPECT_EQ(report.outputChecksum, vec.report.outputChecksum);
    EXPECT_EQ(report.completed, vec.report.completed);
    ASSERT_EQ(streamed.size(), vec.journal.size());
    std::size_t trace_begins = 0;
    for (std::size_t i = 0; i < streamed.size(); ++i) {
        const JournalEvent &s = streamed.event(i);
        const JournalEvent &v = vec.journal.event(i);
        if (s.kind == EventKind::TraceBegin) {
            ++trace_begins;
            EXPECT_EQ(s.a, kStreamedTraceCount);
            EXPECT_EQ(v.a, vec.trace.size());
            EXPECT_EQ(s.cycle, v.cycle);
            continue;
        }
        EXPECT_TRUE(s == v) << "record " << i << " ("
                            << eventKindName(s.kind) << " vs "
                            << eventKindName(v.kind) << ") diverged";
    }
    EXPECT_EQ(trace_begins, 1u);
}

TEST(JournalSegment, StreamRecordRequiresEmptyJournal)
{
    const ServeRunSetup setup = smallSetup();
    serve::TraceStream source(setup.trafficSeed, setup.tenants,
                              setup.horizon);
    Journal jr;
    jr.append(JournalEvent{});
    EXPECT_THROW(recordServeRunStream(setup, source, jr),
                 std::invalid_argument);
}

} // namespace
} // namespace journal
} // namespace darth
