/**
 * @file
 * Journal format compatibility: old journals must be *rejected with
 * a versioned error*, never crash, never replay as silently-wrong
 * history; journals from a future format must fail loudly at the
 * container level.
 *
 * The checked-in fixture tests/journal/fixtures/serve_run_v1.jnl is
 * a complete setup-version-1 serve run recorded before the serving
 * layer moved to wall-clock nanoseconds. Its container format is
 * unchanged (Journal::readBinary parses it and the integrity chain
 * verifies), but its cycle-stamped history cannot be compared
 * against a wall-clock replay — Replayer must refuse it by version,
 * with both versions named in the error.
 */

#include <sstream>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "journal/Replayer.h"

namespace darth
{
namespace journal
{
namespace
{

std::string
fixturePath()
{
    return std::string(DARTH_SOURCE_DIR) +
           "/tests/journal/fixtures/serve_run_v1.jnl";
}

TEST(JournalCompat, V1FixtureParsesAtContainerLevel)
{
    const Journal jr = Journal::readBinaryFile(fixturePath());
    // The recorded run: 92 events, chain and output checksums
    // pinned at recording time. The container format did not change
    // in version 2, so these must keep parsing forever.
    EXPECT_EQ(jr.size(), 92u);
    EXPECT_EQ(jr.chainChecksum(), 2103060473766716997ULL);
    ASSERT_GE(jr.size(), 1u);
    EXPECT_EQ(jr.event(0).kind, EventKind::RunBegin);
    EXPECT_EQ(jr.event(0).a, 1u) << "fixture is not setup version 1";
    const JournalEvent &end = jr.event(jr.size() - 1);
    EXPECT_EQ(end.kind, EventKind::RunEnd);
    EXPECT_EQ(end.c, 12543845274949203619ULL);
}

TEST(JournalCompat, ReplayerRejectsV1ByVersionNotCrash)
{
    const Journal jr = Journal::readBinaryFile(fixturePath());
    try {
        const Replayer replayer(jr);
        FAIL() << "Replayer accepted a version-1 journal";
    } catch (const std::runtime_error &err) {
        const std::string what = err.what();
        EXPECT_NE(what.find("unsupported setup version 1"),
                  std::string::npos)
            << "error does not name the journal's version: " << what;
        EXPECT_NE(what.find("version 2"), std::string::npos)
            << "error does not name the supported version: " << what;
    }
}

TEST(JournalCompat, FutureEventKindIsRejectedOnRead)
{
    Journal jr;
    JournalEvent e;
    e.kind = static_cast<EventKind>(99);
    e.cycle = 1;
    jr.append(e);
    std::stringstream buf;
    jr.writeBinary(buf);
    try {
        Journal::readBinary(buf);
        FAIL() << "readBinary accepted an unknown event kind";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("unknown event kind 99"),
                  std::string::npos)
            << err.what();
    }
}

} // namespace
} // namespace journal
} // namespace darth
