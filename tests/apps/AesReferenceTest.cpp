/**
 * @file
 * Tests for GF(2^8) arithmetic, the FIPS-197 reference AES, and the
 * GF(2) MixColumns formulation.
 */

#include <gtest/gtest.h>

#include "apps/aes/AesReference.h"
#include "apps/aes/Gf256.h"
#include "apps/aes/MixColumnsGf2.h"
#include "common/Random.h"

namespace darth
{
namespace aes
{
namespace
{

TEST(Gf256, XtimeKnownValues)
{
    EXPECT_EQ(xtime(0x57), 0xAE);
    EXPECT_EQ(xtime(0xAE), 0x47);
    EXPECT_EQ(xtime(0x47), 0x8E);
    EXPECT_EQ(xtime(0x8E), 0x07);
}

TEST(Gf256, GmulKnownValues)
{
    // FIPS-197 example: 0x57 * 0x13 = 0xFE.
    EXPECT_EQ(gmul(0x57, 0x13), 0xFE);
    EXPECT_EQ(gmul(0x57, 0x01), 0x57);
    EXPECT_EQ(gmul(0x57, 0x02), 0xAE);
    EXPECT_EQ(gmul(0x00, 0x13), 0x00);
}

TEST(Gf256, GmulCommutative)
{
    Rng rng(301);
    for (int i = 0; i < 500; ++i) {
        const u8 a = static_cast<u8>(rng.uniformInt(u64{256}));
        const u8 b = static_cast<u8>(rng.uniformInt(u64{256}));
        EXPECT_EQ(gmul(a, b), gmul(b, a));
    }
}

TEST(Gf256, InverseIsMultiplicativeInverse)
{
    for (int a = 1; a < 256; ++a)
        EXPECT_EQ(gmul(static_cast<u8>(a), ginv(static_cast<u8>(a))),
                  0x01)
            << "a=" << a;
    EXPECT_EQ(ginv(0), 0);
}

TEST(Gf256, SboxKnownValues)
{
    // Spot checks against the FIPS-197 table.
    EXPECT_EQ(sbox()[0x00], 0x63);
    EXPECT_EQ(sbox()[0x01], 0x7C);
    EXPECT_EQ(sbox()[0x53], 0xED);
    EXPECT_EQ(sbox()[0xFF], 0x16);
}

TEST(Gf256, InvSboxInverts)
{
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(invSbox()[sbox()[static_cast<std::size_t>(i)]], i);
}

TEST(AesReference, Fips197Appendix)
{
    // FIPS-197 Appendix B / C.1 vector.
    const Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                             0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                             0x07, 0x34};
    const std::vector<u8> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                 0x09, 0xcf, 0x4f, 0x3c};
    const Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                            0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                            0x0b, 0x32};
    EXPECT_EQ(encrypt(plaintext, key), expected);
    EXPECT_EQ(decrypt(expected, key), plaintext);
}

TEST(AesReference, Fips197C1Aes128)
{
    // FIPS-197 C.1: key 000102...0f, plaintext 00112233...ff.
    Block plaintext;
    for (std::size_t i = 0; i < 16; ++i)
        plaintext[i] = static_cast<u8>(0x11 * i);
    std::vector<u8> key(16);
    for (std::size_t i = 0; i < 16; ++i)
        key[i] = static_cast<u8>(i);
    const Block expected = {0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04,
                            0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                            0xc5, 0x5a};
    EXPECT_EQ(encrypt(plaintext, key, KeySize::Aes128), expected);
}

TEST(AesReference, Fips197C2Aes192)
{
    Block plaintext;
    for (std::size_t i = 0; i < 16; ++i)
        plaintext[i] = static_cast<u8>(0x11 * i);
    std::vector<u8> key(24);
    for (std::size_t i = 0; i < 24; ++i)
        key[i] = static_cast<u8>(i);
    const Block expected = {0xdd, 0xa9, 0x7c, 0xa4, 0x86, 0x4c, 0xdf,
                            0xe0, 0x6e, 0xaf, 0x70, 0xa0, 0xec, 0x0d,
                            0x71, 0x91};
    EXPECT_EQ(encrypt(plaintext, key, KeySize::Aes192), expected);
    EXPECT_EQ(decrypt(expected, key, KeySize::Aes192), plaintext);
}

TEST(AesReference, Fips197C3Aes256)
{
    Block plaintext;
    for (std::size_t i = 0; i < 16; ++i)
        plaintext[i] = static_cast<u8>(0x11 * i);
    std::vector<u8> key(32);
    for (std::size_t i = 0; i < 32; ++i)
        key[i] = static_cast<u8>(i);
    const Block expected = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67, 0x45,
                            0xbf, 0xea, 0xfc, 0x49, 0x90, 0x4b, 0x49,
                            0x60, 0x89};
    EXPECT_EQ(encrypt(plaintext, key, KeySize::Aes256), expected);
    EXPECT_EQ(decrypt(expected, key, KeySize::Aes256), plaintext);
}

TEST(AesReference, EncryptDecryptRoundTripRandom)
{
    Rng rng(302);
    for (int trial = 0; trial < 50; ++trial) {
        Block plaintext;
        for (auto &b : plaintext)
            b = static_cast<u8>(rng.uniformInt(u64{256}));
        std::vector<u8> key(16);
        for (auto &b : key)
            b = static_cast<u8>(rng.uniformInt(u64{256}));
        EXPECT_EQ(decrypt(encrypt(plaintext, key), key), plaintext);
    }
}

TEST(AesReference, ShiftRowsInverse)
{
    Rng rng(303);
    Block state;
    for (auto &b : state)
        b = static_cast<u8>(rng.uniformInt(u64{256}));
    Block copy = state;
    shiftRows(copy);
    invShiftRows(copy);
    EXPECT_EQ(copy, state);
}

TEST(AesReference, MixColumnsInverse)
{
    Rng rng(304);
    Block state;
    for (auto &b : state)
        b = static_cast<u8>(rng.uniformInt(u64{256}));
    Block copy = state;
    mixColumns(copy);
    invMixColumns(copy);
    EXPECT_EQ(copy, state);
}

TEST(AesReference, KeyExpansionFirstAndLast)
{
    // FIPS-197 A.1 expansion of 2b7e1516...
    const std::vector<u8> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                 0x09, 0xcf, 0x4f, 0x3c};
    const auto rks = expandKey(key, KeySize::Aes128);
    ASSERT_EQ(rks.size(), 11u);
    // Round key 0 = the key itself (column-major match).
    for (std::size_t c = 0; c < 4; ++c)
        for (std::size_t r = 0; r < 4; ++r)
            EXPECT_EQ(rks[0][r + 4 * c], key[4 * c + r]);
    // w[43] = b6:63:0c:a6 -> last column of round key 10.
    EXPECT_EQ(rks[10][0 + 4 * 3], 0xb6);
    EXPECT_EQ(rks[10][1 + 4 * 3], 0x63);
    EXPECT_EQ(rks[10][2 + 4 * 3], 0x0c);
    EXPECT_EQ(rks[10][3 + 4 * 3], 0xa6);
}

TEST(MixColumnsGf2, MatrixIsBinary32x32)
{
    const MatrixI m = mixColumnsGf2Matrix();
    EXPECT_EQ(m.rows(), 32u);
    EXPECT_EQ(m.cols(), 32u);
    for (std::size_t r = 0; r < 32; ++r)
        for (std::size_t c = 0; c < 32; ++c)
            EXPECT_TRUE(m(r, c) == 0 || m(r, c) == 1);
}

TEST(MixColumnsGf2, MatchesReferenceMixColumns)
{
    Rng rng(305);
    for (int trial = 0; trial < 100; ++trial) {
        Block state;
        for (auto &b : state)
            b = static_cast<u8>(rng.uniformInt(u64{256}));
        Block via_matrix = state;
        mixColumnsViaGf2(via_matrix);
        Block via_reference = state;
        mixColumns(via_reference);
        EXPECT_EQ(via_matrix, via_reference);
    }
}

TEST(MixColumnsGf2, InverseMatrixMatchesInvMixColumns)
{
    const MatrixI m = invMixColumnsGf2Matrix();
    Rng rng(306);
    Block state;
    for (auto &b : state)
        b = static_cast<u8>(rng.uniformInt(u64{256}));
    // Parity MVM with the inverse matrix inverts the forward one.
    Block mixed = state;
    mixColumns(mixed);
    for (std::size_t c = 0; c < 4; ++c) {
        const auto x = columnBits(mixed, c);
        std::vector<i64> out(32);
        for (std::size_t i = 0; i < 32; ++i) {
            i64 sum = 0;
            for (std::size_t j = 0; j < 32; ++j)
                sum += m(j, i) * x[j];
            out[i] = sum & 1;
        }
        Block recovered = mixed;
        setColumnBits(recovered, c, out);
        for (std::size_t r = 0; r < 4; ++r)
            EXPECT_EQ(recovered[r + 4 * c], state[r + 4 * c]);
    }
}

TEST(MixColumnsGf2, ColumnBitsRoundTrip)
{
    Block state{};
    std::vector<i64> bits(32);
    for (std::size_t i = 0; i < 32; ++i)
        bits[i] = static_cast<i64>((i * 7) % 2);
    setColumnBits(state, 2, bits);
    EXPECT_EQ(columnBits(state, 2), bits);
}

} // namespace
} // namespace aes
} // namespace darth
