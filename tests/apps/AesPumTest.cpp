/**
 * @file
 * End-to-end tests for AES on the DARTH-PUM datapath: ciphertexts
 * match FIPS-197 through the real simulator, kernel breakdowns are
 * populated, and the ADC choice changes MixColumns latency.
 */

#include <gtest/gtest.h>

#include "apps/aes/AesPum.h"
#include "common/Random.h"

namespace darth
{
namespace aes
{
namespace
{

hct::HctConfig
aesHct(analog::AdcKind adc = analog::AdcKind::Sar)
{
    // A trimmed HCT that still satisfies the AES mapping: 16+
    // elements, 24+ registers, a 64x32 analog array.
    hct::HctConfig cfg;
    cfg.dce.numPipelines = 2;
    cfg.dce.pipeline.depth = 16;
    cfg.dce.pipeline.width = 64;
    cfg.dce.pipeline.numRegs = 24;
    cfg.ace.numArrays = 1;
    cfg.ace.arrayRows = 64;
    cfg.ace.arrayCols = 32;
    cfg.ace.adc.kind = adc;
    cfg.ace.numAdcs = adc == analog::AdcKind::Sar ? 8 : 1;
    if (adc == analog::AdcKind::Ramp)
        cfg.ace.rampStates = 4;   // §5.3 early termination
    return cfg;
}

const std::vector<u8> kKey = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                              0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                              0x09, 0xcf, 0x4f, 0x3c};

TEST(AesPum, MatchesFips197Vector)
{
    AesPum engine(aesHct());
    engine.initArrays(kKey);
    const Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                             0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                             0x07, 0x34};
    const Block expected = {0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09,
                            0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                            0x0b, 0x32};
    EXPECT_EQ(engine.encrypt(plaintext), expected);
}

TEST(AesPum, MatchesReferenceOnRandomBlocks)
{
    AesPum engine(aesHct());
    engine.initArrays(kKey);
    Rng rng(401);
    for (int trial = 0; trial < 8; ++trial) {
        Block plaintext;
        for (auto &b : plaintext)
            b = static_cast<u8>(rng.uniformInt(u64{256}));
        EXPECT_EQ(engine.encrypt(plaintext),
                  encrypt(plaintext, kKey))
            << "trial " << trial;
    }
}

TEST(AesPum, BreakdownCoversAllKernels)
{
    AesPum engine(aesHct());
    engine.initArrays(kKey);
    engine.encrypt(Block{});
    const auto &bd = engine.breakdown();
    EXPECT_GT(bd.dataMovement, 0u);
    EXPECT_GT(bd.subBytes, 0u);
    EXPECT_GT(bd.shiftRows, 0u);
    EXPECT_GT(bd.mixColumns, 0u);
    EXPECT_GT(bd.addRoundKey, 0u);
    EXPECT_EQ(bd.total(), engine.lastLatency());
}

TEST(AesPum, RampEarlyTerminationReducesAdcOccupancyAndEnergy)
{
    // §7.3: single-block MixColumns latency is bound by the DCE row
    // writes either way, but the early-terminated ramp occupies the
    // shared ADCs for 4 cycles per MVM instead of 4+ (32 lanes / 8
    // SAR ADCs) — which is what lifts multi-stream AES throughput —
    // and costs far less conversion energy.
    AesPum sar(aesHct(analog::AdcKind::Sar));
    sar.initArrays(kKey);
    sar.encrypt(Block{});

    AesPum ramp(aesHct(analog::AdcKind::Ramp));
    ramp.initArrays(kKey);
    ramp.encrypt(Block{});

    EXPECT_LE(ramp.tally().get("ace.adc").cycles,
              sar.tally().get("ace.adc").cycles);
    EXPECT_LT(ramp.tally().get("ace.adc").energy,
              sar.tally().get("ace.adc").energy);
    // Same ciphertext math regardless of ADC choice.
    EXPECT_EQ(ramp.breakdown().subBytes, sar.breakdown().subBytes);
}

TEST(AesPum, SurvivesModerateAnalogNoise)
{
    // §4.3: with the parasitic compensation scheme, moderate noise
    // must not corrupt the ciphertext (the 2y - P sums sit on even
    // integers, a half-LSB of headroom). Note: our first-order IR
    // model shows the ±1 remap only cancels wire current for
    // sign-balanced matrices (see EXPERIMENTS.md), so the wire
    // resistance corner here is below the paper's implied level.
    hct::HctConfig cfg = aesHct();
    cfg.ace.noise.programSigma = 0.005;
    cfg.ace.noise.readSigma = 0.002;
    cfg.ace.noise.wireResistance = 2e-5;
    AesPum engine(cfg, 77);
    engine.initArrays(kKey);
    const Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                             0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                             0x07, 0x34};
    EXPECT_EQ(engine.encrypt(plaintext), encrypt(plaintext, kKey));
}

TEST(AesPum, ReKeyingReplacesThePlacement)
{
    // initArrays() twice (re-keying) must release and re-place the
    // MixColumns matrix on the single-tile chip, not run out of HCTs.
    AesPum engine(aesHct());
    engine.initArrays({0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07,
                       0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
                       0x0f});
    engine.encrypt(Block{});
    engine.initArrays(kKey);
    const Block plaintext = {0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30,
                             0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
                             0x07, 0x34};
    EXPECT_EQ(engine.encrypt(plaintext), encrypt(plaintext, kKey));
}

TEST(AesPum, EncryptWithoutInitIsFatal)
{
    AesPum engine(aesHct());
    EXPECT_THROW((void)engine.encrypt(Block{}), std::runtime_error);
}

TEST(AesPum, StreamsPerHctPaperConfig)
{
    const auto cfg = hct::HctConfig::paperDefault(analog::AdcKind::Sar);
    // 64 analog arrays, 63 non-table pipelines.
    EXPECT_EQ(AesPum::streamsPerHct(cfg), 63u);
}

TEST(AesPum, TooSmallConfigIsFatal)
{
    hct::HctConfig cfg = aesHct();
    cfg.ace.arrayRows = 16;
    EXPECT_THROW(AesPum{cfg}, std::runtime_error);
}

} // namespace
} // namespace aes
} // namespace darth
