/**
 * @file
 * Tests for the I-BERT integer kernels, the encoder layer, and the
 * LLM mapper.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "apps/llm/Encoder.h"
#include "apps/llm/LlmMapper.h"

namespace darth
{
namespace llm
{
namespace
{

TEST(IBert, ExpMatchesReferenceOnGrid)
{
    const double scale = 1.0 / 64.0;
    for (double x = -6.0; x <= 0.0; x += 0.125) {
        const i64 q = static_cast<i64>(std::nearbyint(x / scale));
        const Fixed e = iExp(q, scale);
        EXPECT_NEAR(e.real(), std::exp(x), 0.03)
            << "x=" << x;
    }
}

TEST(IBert, ExpIsMonotonic)
{
    const double scale = 1.0 / 64.0;
    double prev = -1.0;
    for (i64 q = -400; q <= 0; ++q) {
        const double v = iExp(q, scale).real();
        EXPECT_GE(v + 1e-9, prev);
        prev = v;
    }
}

TEST(IBert, SoftmaxSumsToOne)
{
    const double scale = 1.0 / 16.0;
    const std::vector<i64> logits = {10, -5, 32, 0, -40, 7};
    const auto probs = iSoftmax(logits, scale, 15);
    i64 sum = 0;
    for (i64 p : probs) {
        EXPECT_GE(p, 0);
        sum += p;
    }
    EXPECT_NEAR(static_cast<double>(sum), 32768.0, 600.0);
}

TEST(IBert, SoftmaxMatchesReference)
{
    const double scale = 1.0 / 16.0;
    const std::vector<i64> logits = {16, 0, -16, 32};
    std::vector<double> real_logits;
    for (i64 q : logits)
        real_logits.push_back(static_cast<double>(q) * scale);
    const auto probs = iSoftmax(logits, scale, 15);
    const auto ref = refSoftmax(real_logits);
    for (std::size_t i = 0; i < logits.size(); ++i)
        EXPECT_NEAR(static_cast<double>(probs[i]) / 32768.0, ref[i],
                    0.02)
            << "i=" << i;
}

TEST(IBert, SoftmaxArgmaxPreserved)
{
    const auto probs = iSoftmax({3, 50, -7, 12}, 1.0 / 8.0, 15);
    std::size_t best = 0;
    for (std::size_t i = 1; i < probs.size(); ++i)
        if (probs[i] > probs[best])
            best = i;
    EXPECT_EQ(best, 1u);
}

TEST(IBert, GeluMatchesReference)
{
    const double scale = 1.0 / 32.0;
    for (double x = -4.0; x <= 4.0; x += 0.25) {
        const i64 q = static_cast<i64>(std::nearbyint(x / scale));
        const double got = static_cast<double>(iGelu(q, scale)) * scale;
        EXPECT_NEAR(got, refGelu(x), 0.12) << "x=" << x;
    }
}

TEST(IBert, GeluLimits)
{
    const double scale = 1.0 / 32.0;
    // Large positive ~ identity, large negative ~ 0.
    EXPECT_NEAR(static_cast<double>(iGelu(320, scale)) * scale, 10.0,
                0.3);
    EXPECT_NEAR(static_cast<double>(iGelu(-320, scale)) * scale, 0.0,
                0.3);
}

TEST(IBert, LayerNormZeroMeanUnitVariance)
{
    std::vector<i64> x = {10, 20, 30, 40, 50, 60, 70, 80};
    const auto y = iLayerNorm(x, 6);
    i64 sum = 0;
    for (i64 v : y)
        sum += v;
    // Mean ~ 0 at scale 2^6.
    EXPECT_NEAR(static_cast<double>(sum) /
                    static_cast<double>(y.size()) / 64.0,
                0.0, 0.1);
    // Variance ~ 1.
    double var = 0.0;
    for (i64 v : y)
        var += std::pow(static_cast<double>(v) / 64.0, 2);
    var /= static_cast<double>(y.size());
    EXPECT_NEAR(var, 1.0, 0.25);
}

TEST(IBert, LayerNormConstantRowIsSafe)
{
    const auto y = iLayerNorm({5, 5, 5, 5}, 6);
    for (i64 v : y)
        EXPECT_EQ(v, 0);
}

TEST(Encoder, ForwardShapeAndDeterminism)
{
    EncoderConfig cfg;
    cfg.seqLen = 8;
    cfg.dModel = 32;
    cfg.numHeads = 2;
    cfg.dFf = 64;
    Encoder enc(cfg, 7);
    const MatrixI x = syntheticTokens(cfg, 3);
    const MatrixI a = enc.forward(x);
    const MatrixI b = enc.forward(x);
    EXPECT_EQ(a.rows(), cfg.seqLen);
    EXPECT_EQ(a.cols(), cfg.dModel);
    EXPECT_EQ(a, b);
}

TEST(Encoder, OutputDependsOnInput)
{
    EncoderConfig cfg;
    cfg.seqLen = 8;
    cfg.dModel = 32;
    cfg.numHeads = 2;
    cfg.dFf = 64;
    Encoder enc(cfg, 7);
    EXPECT_NE(enc.forward(syntheticTokens(cfg, 3)),
              enc.forward(syntheticTokens(cfg, 4)));
}

TEST(Encoder, StatsAccounting)
{
    EncoderConfig cfg;
    cfg.seqLen = 64;
    cfg.dModel = 128;
    cfg.numHeads = 4;
    cfg.dFf = 512;
    Encoder enc(cfg, 7);
    const auto st = enc.stats();
    EXPECT_EQ(st.staticMacs,
              4ull * 64 * 128 * 128 + 2ull * 64 * 128 * 512);
    EXPECT_EQ(st.dynamicMacs, 2ull * 4 * 64 * 64 * 32);
    EXPECT_GT(st.elementOps, 0u);
    ASSERT_EQ(st.staticMvms.size(), 3u);
    EXPECT_EQ(st.staticMvms[0].count, 4u * 64u);
}

TEST(EncoderDeath, BadHeadsIsFatal)
{
    EncoderConfig cfg;
    cfg.dModel = 30;
    cfg.numHeads = 4;
    EXPECT_THROW(Encoder{cfg}, std::runtime_error);
}

TEST(LlmMapper, HybridFasterThanDigital)
{
    Encoder enc(EncoderConfig{}, 7);
    const auto stats = enc.stats();
    LlmMapper mapper(hct::HctConfig::paperDefault(analog::AdcKind::Sar));
    const auto hybrid = mapper.hybridCost(stats);
    const auto digital = mapper.digitalCost(stats);
    EXPECT_GT(hybrid.latency, 0u);
    EXPECT_LT(hybrid.latency, digital.latency);
    EXPECT_LT(hybrid.energy, digital.energy);
}

TEST(LlmMapper, NonMvmWorkIsVisibleAtBertBaseScale)
{
    // §7.1 reports ~71% of DARTH-PUM LLM execution as non-MVM work.
    // Our model, with the DCE work spread across the placement's
    // tiles, is MVM-dominated instead (the Table-2/3-provisioned
    // ADCs bound the analog side); EXPERIMENTS.md records the gap.
    // The invariant kept here: the non-MVM share is non-trivial and
    // grows with sequence length (attention is quadratic).
    Encoder small(EncoderConfig{}, 7);
    Encoder big(EncoderConfig::bertBase(), 7);
    LlmMapper mapper(hct::HctConfig::paperDefault(analog::AdcKind::Sar));
    const auto small_cost = mapper.hybridCost(small.stats());
    const auto big_cost = mapper.hybridCost(big.stats());
    EXPECT_GT(small_cost.nonMvmFraction, 0.02);
    EXPECT_GT(big_cost.nonMvmFraction, 0.02);
    EXPECT_LT(big_cost.nonMvmFraction, 0.98);
}

TEST(Encoder, ForwardDecomposesIntoSharedHelpers)
{
    // The helpers the graph path uses reproduce forward() when
    // composed with the host projection: this is the structural
    // bit-identity argument for EncoderForward.
    EncoderConfig cfg;
    cfg.seqLen = 4;
    cfg.dModel = 32;
    cfg.numHeads = 2;
    cfg.dFf = 64;
    Encoder enc(cfg, 11);
    const MatrixI tokens = syntheticTokens(cfg, 2);

    auto project = [](const MatrixI &x, const MatrixI &w) {
        MatrixI out(x.rows(), w.cols());
        for (std::size_t t = 0; t < x.rows(); ++t)
            for (std::size_t c = 0; c < w.cols(); ++c) {
                i64 acc = 0;
                for (std::size_t k = 0; k < w.rows(); ++k)
                    acc += x(t, k) * w(k, c);
                out(t, c) = acc;
            }
        return out;
    };

    MatrixI q = project(tokens, enc.wq());
    MatrixI k = project(tokens, enc.wk());
    MatrixI v = project(tokens, enc.wv());
    Encoder::requantProjection(&q);
    Encoder::requantProjection(&k);
    Encoder::requantProjection(&v);
    const MatrixI context = enc.attentionContext(q, k, v);
    const MatrixI x1 = enc.addNorm(project(context, enc.wo()), tokens);
    const MatrixI ff1a = enc.geluActivation(project(x1, enc.wFf1()));
    const MatrixI out = enc.addNorm(project(ff1a, enc.wFf2()), x1);
    EXPECT_EQ(out, enc.forward(tokens));
}

// Acceptance: the whole encoder-layer graph forward through a session
// is bit-identical to Encoder::forward, and back-to-back forwards
// pipeline through the persistent placements.
TEST(Encoder, GraphForwardBitIdenticalAndPipelined)
{
    EncoderConfig enc_cfg;
    enc_cfg.seqLen = 4;
    enc_cfg.dModel = 32;
    enc_cfg.numHeads = 2;
    enc_cfg.dFf = 64;
    Encoder enc(enc_cfg, 11);
    const MatrixI tokens = syntheticTokens(enc_cfg, 2);

    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 2;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 32;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 16;
    cfg.hct.ace.arrayRows = 64;
    cfg.hct.ace.arrayCols = 32;
    cfg.numHcts = 6;
    runtime::Chip chip(cfg);
    runtime::Runtime rt(chip);
    runtime::Session session = rt.createSession();

    // 12-bit activations: add-norm outputs exceed int8.
    LlmMapper mapper(cfg.hct, 8, 2, 12);
    EncoderForward forward(session, enc, mapper);
    EXPECT_EQ(forward.hctsUsed(), 6u);

    const MatrixI ref = enc.forward(tokens);
    Cycle serialized = 0;
    Cycle prev_done = 0;
    for (int i = 0; i < 3; ++i) {
        const EncoderForwardResult r = forward.infer(tokens);
        EXPECT_EQ(r.output, ref) << "forward " << i;
        EXPECT_EQ(r.mvmCount, 6u * enc_cfg.seqLen);
        if (i == 0)
            serialized = r.done - r.start;
        else
            EXPECT_LT(r.done - prev_done, serialized)
                << "forward " << i << " did not pipeline";
        prev_done = r.done;
    }
}

} // namespace
} // namespace llm
} // namespace darth
