/**
 * @file
 * Tests for the CNN substrate: tensors, layers, ResNet-20 topology,
 * noise injection, and the DARTH mapper costs.
 */

#include <gtest/gtest.h>

#include "apps/cnn/CnnMapper.h"
#include "apps/cnn/Resnet20.h"
#include "apps/cnn/TinyCnn.h"

namespace darth
{
namespace cnn
{
namespace
{

TEST(Tensor, IndexingRoundTrip)
{
    Tensor t(2, 3, 4);
    t.at(1, 2, 3) = 42;
    EXPECT_EQ(t.at(1, 2, 3), 42);
    EXPECT_EQ(t.size(), 24u);
    EXPECT_DEATH((void)t.at(2, 0, 0), "out of range");
}

TEST(Conv2d, IdentityKernelPassesThrough)
{
    // 1x1 conv, single channel, weight 1, no bias, no shift.
    Conv2d conv("id", 1, 1, 1, 1, 0);
    conv.setRequantShift(0);
    // weightMatrix is 1x1; set it via initRandom replacement:
    // directly exercise forward with the zero weights -> zeros.
    Tensor in(1, 2, 2);
    in.at(0, 0, 0) = 5;
    const Tensor out = conv.forward(in);
    EXPECT_EQ(out.at(0, 0, 0), 0);   // zero weights
}

TEST(Conv2d, StatsMatchShape)
{
    Conv2d conv("c", 16, 32, 3, 2, 1);
    const LayerStats s = conv.stats(32, 32);
    EXPECT_EQ(s.mvmRows, 16u * 9u);
    EXPECT_EQ(s.mvmCols, 32u);
    EXPECT_EQ(s.mvmCount, 16u * 16u);
    EXPECT_EQ(s.macs, 144ull * 32 * 256);
    EXPECT_EQ(s.outputElems, 32ull * 16 * 16);
}

TEST(Conv2d, ForwardMatchesDirectConvolution)
{
    Rng rng(501);
    Conv2d conv("c", 2, 3, 3, 1, 1);
    conv.initRandom(rng);
    conv.setRequantShift(0);
    Tensor in(2, 4, 4);
    for (auto &v : in.data())
        v = static_cast<i32>(rng.uniformInt(i64{-3}, i64{3}));
    const Tensor out = conv.forward(in);
    // Direct dense convolution cross-check at one position.
    const auto &w = conv.weightMatrix();
    for (std::size_t oc = 0; oc < 3; ++oc) {
        i64 acc = 0;
        std::size_t idx = 0;
        for (std::size_t ic = 0; ic < 2; ++ic)
            for (i64 ky = -1; ky <= 1; ++ky)
                for (i64 kx = -1; kx <= 1; ++kx) {
                    const i64 y = 1 + ky, x = 1 + kx;
                    const i64 v =
                        (y < 0 || y >= 4 || x < 0 || x >= 4)
                            ? 0
                            : in.at(ic, static_cast<std::size_t>(y),
                                    static_cast<std::size_t>(x));
                    acc += v * w(idx++, oc);
                }
        // forward adds bias then clamps.
        const i64 expect = acc;
        const i64 got = out.at(oc, 1, 1);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expect), 8.0);
    }
}

TEST(Layers, ReluClampsNegatives)
{
    Tensor t(1, 1, 3);
    t.at(0, 0, 0) = -5;
    t.at(0, 0, 1) = 0;
    t.at(0, 0, 2) = 7;
    relu(t);
    EXPECT_EQ(t.at(0, 0, 0), 0);
    EXPECT_EQ(t.at(0, 0, 1), 0);
    EXPECT_EQ(t.at(0, 0, 2), 7);
}

TEST(Layers, GlobalAvgPool)
{
    Tensor t(2, 2, 2);
    for (std::size_t i = 0; i < 4; ++i)
        t.data()[i] = 4;          // channel 0 average 4
    for (std::size_t i = 4; i < 8; ++i)
        t.data()[i] = static_cast<i32>(i);   // 4,5,6,7 -> 5
    const auto pooled = globalAvgPool(t);
    EXPECT_EQ(pooled[0], 4);
    EXPECT_EQ(pooled[1], 5);
}

TEST(Layers, ResidualAddClamps)
{
    Tensor a(1, 1, 2), b(1, 1, 2);
    a.at(0, 0, 0) = 120;
    b.at(0, 0, 0) = 100;
    a.at(0, 0, 1) = -3;
    b.at(0, 0, 1) = -5;
    addResidual(a, b);
    EXPECT_EQ(a.at(0, 0, 0), 127);
    EXPECT_EQ(a.at(0, 0, 1), -8);
}

TEST(Resnet20, TopologyMatchesFigure15)
{
    Resnet20 net(42);
    const auto stats = net.layerStats();
    // c1 + 3 stages x (3 blocks x 2 convs) + 2 downsamples + fc = 22.
    EXPECT_EQ(stats.size(), 22u);
    EXPECT_EQ(stats.front().name, "c1-Conv1");
    EXPECT_EQ(stats.back().name, "Seq-b4-Seq");
    // Downsample layers exist for stages 2 and 3.
    int ds = 0;
    for (const auto &s : stats)
        ds += s.name.find("-ds") != std::string::npos;
    EXPECT_EQ(ds, 2);
}

TEST(Resnet20, TotalMacsInExpectedRange)
{
    Resnet20 net(42);
    u64 macs = 0;
    for (const auto &s : net.layerStats())
        macs += s.macs;
    // Standard ResNet-20 is ~40.5M MACs.
    EXPECT_GT(macs, 35'000'000ull);
    EXPECT_LT(macs, 46'000'000ull);
}

TEST(Resnet20, InferenceIsDeterministic)
{
    Resnet20 net(42);
    const Tensor input = syntheticInput(1);
    const auto a = net.infer(input);
    const auto b = net.infer(input);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.size(), 10u);
}

TEST(Resnet20, DifferentInputsGiveDifferentLogits)
{
    Resnet20 net(42);
    const auto a = net.infer(syntheticInput(1));
    const auto b = net.infer(syntheticInput(2));
    EXPECT_NE(a, b);
}

TEST(Resnet20, MildNoiseKeepsArgmaxAgreement)
{
    // The §7.5 property: analog noise at realistic levels must not
    // change the classification for most inputs.
    Resnet20 net(42);
    Rng noise_rng(99);
    MvmNoise noise;
    noise.sigmaPerSqrtK = 0.3;
    noise.rng = &noise_rng;
    int agree = 0;
    const int n = 10;
    for (int i = 0; i < n; ++i) {
        const Tensor input = syntheticInput(1000 + i);
        const auto exact = Resnet20::argmax(net.infer(input));
        const auto noisy = Resnet20::argmax(net.infer(input, noise));
        agree += exact == noisy;
    }
    EXPECT_GE(agree, 8);
}

TEST(Resnet20, ExtremeNoiseBreaksAgreement)
{
    // Failure injection: absurd noise must visibly corrupt logits.
    Resnet20 net(42);
    Rng noise_rng(100);
    MvmNoise noise;
    noise.sigmaPerSqrtK = 200.0;
    noise.rng = &noise_rng;
    const Tensor input = syntheticInput(5);
    EXPECT_NE(net.infer(input), net.infer(input, noise));
}

TEST(CnnMapper, LayerCostPositiveAndScales)
{
    const auto cfg = hct::HctConfig::paperDefault(analog::AdcKind::Sar);
    CnnMapper mapper(cfg);
    Resnet20 net(42);
    const auto stats = net.layerStats();
    const auto small = mapper.layerCost(stats.back());    // FC
    const auto large = mapper.layerCost(stats[1]);        // big conv
    EXPECT_GT(small.latency, 0u);
    EXPECT_GT(large.latency, small.latency);
    EXPECT_GT(large.energy, small.energy);
    EXPECT_GE(large.hctsUsed, 1u);
}

TEST(CnnMapper, HybridBeatsDigitalOnlyOnConvLayers)
{
    const auto cfg = hct::HctConfig::paperDefault(analog::AdcKind::Sar);
    CnnMapper mapper(cfg);
    Resnet20 net(42);
    const auto stats = net.layerStats();
    const auto hybrid = mapper.networkCost(stats);
    const auto digital = mapper.digitalNetworkCost(stats);
    EXPECT_LT(hybrid.latency, digital.latency);
    EXPECT_LT(hybrid.energy, digital.energy);
}

TEST(Conv2d, Im2colAndAssembleReproduceForward)
{
    // The im2col/epilogue split shared with the session-graph path
    // reproduces forward() exactly.
    Rng rng(601);
    Conv2d conv("c", 2, 3, 3, 1, 1);
    conv.initRandom(rng);
    Tensor in(2, 4, 4);
    for (auto &v : in.data())
        v = static_cast<i32>(rng.uniformInt(i64{-3}, i64{3}));

    const auto patches = conv.im2colPatches(in);
    ASSERT_EQ(patches.size(), 16u);
    ASSERT_EQ(patches[0].size(), 18u);
    const auto &w = conv.weightMatrix();
    std::vector<std::vector<i64>> accs;
    for (const auto &patch : patches) {
        std::vector<i64> acc(w.cols(), 0);
        for (std::size_t oc = 0; oc < w.cols(); ++oc)
            for (std::size_t i = 0; i < patch.size(); ++i)
                acc[oc] += patch[i] * w(i, oc);
        accs.push_back(std::move(acc));
    }
    const Tensor assembled = conv.assembleFromAccs(accs, 4, 4);
    const Tensor direct = conv.forward(in);
    EXPECT_EQ(assembled.data(), direct.data());
}

TEST(TinyCnn, DeterministicInSeed)
{
    TinyCnn a(9), b(9), c(10);
    EXPECT_EQ(a.conv1().weightMatrix(), b.conv1().weightMatrix());
    EXPECT_EQ(a.fc().weightMatrix(), b.fc().weightMatrix());
    EXPECT_NE(a.conv1().weightMatrix(), c.conv1().weightMatrix());
    const Tensor in = a.inputFromFlat(std::vector<i64>(64, 1));
    EXPECT_EQ(a.infer(in), b.infer(in));
}

/** Small chip that fits all three TinyCnn layers. */
runtime::ChipConfig
tinyForwardChip()
{
    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 2;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 32;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 16;
    cfg.hct.ace.arrayRows = 64;
    cfg.hct.ace.arrayCols = 32;
    cfg.numHcts = 3;
    return cfg;
}

// Acceptance: the graph-driven whole-network forward is bit-identical
// to the reference inference, and back-to-back inferences through the
// persistent placements pipeline (spacing below the serialized
// single-inference latency).
TEST(TinyCnn, GraphForwardBitIdenticalAndPipelined)
{
    const auto cfg = tinyForwardChip();
    runtime::Chip chip(cfg);
    runtime::Runtime rt(chip);
    runtime::Session session = rt.createSession();

    TinyCnn net(7);
    CnnMapper mapper(cfg.hct);
    TinyCnnForward forward(session, net, mapper);
    EXPECT_EQ(forward.hctsUsed(), 3u);

    Rng rng(11);
    Cycle serialized = 0;
    Cycle prev_done = 0;
    for (int i = 0; i < 3; ++i) {
        Tensor in(1, net.inputHw(), net.inputHw());
        for (auto &v : in.data())
            v = static_cast<i32>(rng.uniformInt(i64{-8}, i64{7}));
        const ForwardResult r = forward.infer(in);
        EXPECT_EQ(r.logits, net.infer(in)) << "inference " << i;
        EXPECT_EQ(r.mvmCount, 81u);
        if (i == 0)
            serialized = r.done - r.start;
        else
            EXPECT_LT(r.done - prev_done, serialized)
                << "inference " << i << " did not pipeline";
        prev_done = r.done;
    }
}

TEST(TinyCnn, GraphForwardHonoursAdmissionEarliest)
{
    const auto cfg = tinyForwardChip();
    runtime::Chip chip(cfg);
    runtime::Runtime rt(chip);
    runtime::Session session = rt.createSession();
    TinyCnn net(7);
    CnnMapper mapper(cfg.hct);
    TinyCnnForward forward(session, net, mapper);
    const Tensor in = net.inputFromFlat(std::vector<i64>(64, 2));
    const ForwardResult r = forward.infer(in, /*earliest=*/40000);
    EXPECT_GE(r.start, 40000u);
    EXPECT_EQ(r.logits, net.infer(in));
}

} // namespace
} // namespace cnn
} // namespace darth
