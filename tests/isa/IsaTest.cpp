/**
 * @file
 * Unit tests for the hybrid ISA: mnemonics, binary encoding
 * round-trips, and assembler/disassembler round-trips.
 */

#include <gtest/gtest.h>

#include "isa/Assembler.h"
#include "isa/Encoding.h"
#include "isa/Isa.h"

namespace darth
{
namespace isa
{
namespace
{

TEST(Isa, MnemonicRoundTrip)
{
    for (Opcode op :
         {Opcode::Nop, Opcode::Halt, Opcode::DAdd, Opcode::DXor,
          Opcode::DRot, Opcode::ELoad, Opcode::AMvm, Opcode::Reserve,
          Opcode::VACore, Opcode::AModeOff}) {
        Opcode parsed;
        ASSERT_TRUE(opcodeFromName(opcodeName(op), &parsed));
        EXPECT_EQ(parsed, op);
    }
}

TEST(Isa, UnknownMnemonicRejected)
{
    Opcode parsed;
    EXPECT_FALSE(opcodeFromName("frobnicate", &parsed));
}

TEST(Encoding, CompactInstructionIsOneWord)
{
    Instruction inst;
    inst.op = Opcode::DAdd;
    inst.hct = 3;
    inst.pipe = 7;
    inst.dst = 2;
    inst.srcA = 0;
    inst.srcB = 1;
    inst.bits = 16;
    inst.imm = 5;
    EXPECT_EQ(encodeInstruction(inst).size(), 1u);
}

TEST(Encoding, LargeImmediateUsesExtensionWord)
{
    Instruction inst;
    inst.op = Opcode::DShl;
    inst.imm = 300;
    EXPECT_EQ(encodeInstruction(inst).size(), 2u);
}

TEST(Encoding, ProgramRoundTrip)
{
    Program program;
    Instruction a;
    a.op = Opcode::DXor;
    a.hct = 1;
    a.pipe = 2;
    a.dst = 3;
    a.srcA = 4;
    a.srcB = 5;
    a.bits = 32;
    a.imm = 9;
    Instruction b;
    b.op = Opcode::AMvm;
    b.hct = 0;
    b.srcA = 7;
    b.bits = 8;
    b.imm = 1000;   // forces extended encoding
    Instruction c;
    c.op = Opcode::Halt;
    program = {a, b, c};

    const auto words = encodeProgram(program);
    EXPECT_EQ(words.size(), 4u);   // 1 + 2 + 1
    EXPECT_EQ(decodeProgram(words), program);
}

TEST(Encoding, TruncatedExtendedWordIsFatal)
{
    Instruction inst;
    inst.op = Opcode::DShl;
    inst.imm = 400;
    auto words = encodeInstruction(inst);
    words.pop_back();
    EXPECT_THROW((void)decodeProgram(words), std::runtime_error);
}

TEST(Assembler, ParsesDigitalMacros)
{
    const Program p = assemble(R"(
        # compute v2 = v0 + v1 on HCT 0, pipeline 1
        dadd h0.p1 v2, v0, v1, 16
        dxor h2.p3 v4, v5, v6, 8
        halt
    )");
    ASSERT_EQ(p.size(), 3u);
    EXPECT_EQ(p[0].op, Opcode::DAdd);
    EXPECT_EQ(p[0].hct, 0);
    EXPECT_EQ(p[0].pipe, 1);
    EXPECT_EQ(p[0].dst, 2);
    EXPECT_EQ(p[0].srcA, 0);
    EXPECT_EQ(p[0].srcB, 1);
    EXPECT_EQ(p[0].bits, 16);
    EXPECT_EQ(p[1].op, Opcode::DXor);
    EXPECT_EQ(p[1].hct, 2);
    EXPECT_EQ(p[2].op, Opcode::Halt);
}

TEST(Assembler, ParsesShiftsAndRotates)
{
    const Program p = assemble("dshl h0.p0 v3, v2, 16, 4\n"
                               "drot h1.p2 v5, v5, 32, 8\n");
    EXPECT_EQ(p[0].op, Opcode::DShl);
    EXPECT_EQ(p[0].imm, 4);
    EXPECT_EQ(p[1].op, Opcode::DRot);
    EXPECT_EQ(p[1].bits, 32);
    EXPECT_EQ(p[1].imm, 8);
}

TEST(Assembler, ParsesElementLoad)
{
    const Program p = assemble("eload h0.p1 v4, v0, p2, v8, 8\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].op, Opcode::ELoad);
    EXPECT_EQ(p[0].pipe, 1);
    EXPECT_EQ(p[0].dst, 4);
    EXPECT_EQ(p[0].srcA, 0);
    EXPECT_EQ(p[0].imm & 0xFF, 2);        // table pipeline
    EXPECT_EQ(p[0].imm >> 8, 8);          // table base register
    EXPECT_EQ(p[0].bits, 8);
}

TEST(Assembler, ParsesHybridAndManagement)
{
    const Program p = assemble(R"(
        vacore h0 8, 4
        reserve h0.p3 v1
        amvm h0.p0 v5, 8
        amodeoff h1
    )");
    EXPECT_EQ(p[0].op, Opcode::VACore);
    EXPECT_EQ(p[0].bits, 8);
    EXPECT_EQ(p[0].imm, 4);
    EXPECT_EQ(p[1].op, Opcode::Reserve);
    EXPECT_EQ(p[1].dst, 1);
    EXPECT_EQ(p[2].op, Opcode::AMvm);
    EXPECT_EQ(p[2].srcA, 5);
    EXPECT_EQ(p[2].bits, 8);
    EXPECT_EQ(p[3].op, Opcode::AModeOff);
    EXPECT_EQ(p[3].hct, 1);
}

TEST(Assembler, DisassembleAssembleRoundTrip)
{
    const Program original = assemble(R"(
        vacore h0 4, 2
        dadd h0.p1 v2, v0, v1, 16
        dnot h0.p1 v3, v2, 16
        dshl h0.p1 v4, v3, 16, 2
        drot h0.p1 v4, v4, 16, 4
        dselect h0.p1 v5, v4, v3, v2, 15, 16
        eload h0.p1 v6, v5, p2, v0, 8
        estore h0.p1 v6, v5, p2, v0, 8
        amvm h0.p0 v6, 8
        reserve h0.p2 v0
        amodeoff h0
        dmodeoff h0
        nop
        halt
    )");
    const Program round = assemble(disassemble(original));
    EXPECT_EQ(round, original);
}

TEST(AssemblerDeath, SyntaxErrorsAreFatal)
{
    EXPECT_THROW((void)assemble("dadd h0.p0 v1, v2\n"),
                 std::runtime_error);
    EXPECT_THROW((void)assemble("bogus h0\n"), std::runtime_error);
    EXPECT_THROW((void)assemble("dadd x0.p0 v1, v2, v3, 8\n"),
                 std::runtime_error);
}

TEST(Assembler, IgnoresCommentsAndBlankLines)
{
    const Program p = assemble("\n  # just a comment\n\nnop\n");
    ASSERT_EQ(p.size(), 1u);
    EXPECT_EQ(p[0].op, Opcode::Nop);
}

} // namespace
} // namespace isa
} // namespace darth
