/**
 * @file
 * Integration tests for the front end: whole assembled programs
 * executing against real HCTs, including the hybrid MVM path.
 */

#include <gtest/gtest.h>

#include "isa/Assembler.h"
#include "isa/FrontEnd.h"

namespace darth
{
namespace isa
{
namespace
{

hct::HctConfig
smallHct()
{
    hct::HctConfig cfg;
    cfg.dce.numPipelines = 4;
    cfg.dce.pipeline.depth = 32;
    cfg.dce.pipeline.width = 8;
    cfg.dce.pipeline.numRegs = 8;
    cfg.ace.numArrays = 16;
    cfg.ace.arrayRows = 16;
    cfg.ace.arrayCols = 8;
    return cfg;
}

TEST(FrontEnd, RunsDigitalProgram)
{
    hct::Hct hct(smallHct());
    hct.loadVector(1, 0, {1, 2, 3, 4, 5, 6, 7, 8}, 16, 0);
    hct.loadVector(1, 1, {10, 20, 30, 40, 50, 60, 70, 80}, 16, 0);

    FrontEnd fe({&hct});
    const auto stats = fe.run(assemble(R"(
        dadd h0.p1 v2, v0, v1, 16
        dsub h0.p1 v3, v1, v0, 16
        dxor h0.p1 v4, v0, v1, 16
        halt
    )"));
    EXPECT_EQ(stats.instructions, 4u);
    EXPECT_GT(stats.completion, 0u);
    EXPECT_EQ(hct.readVector(1, 2, 16),
              (std::vector<i64>{11, 22, 33, 44, 55, 66, 77, 88}));
    EXPECT_EQ(hct.readVector(1, 3, 16),
              (std::vector<i64>{9, 18, 27, 36, 45, 54, 63, 72}));
}

TEST(FrontEnd, HybridMvmViaIsa)
{
    hct::Hct hct(smallHct());
    MatrixI m(8, 8);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            m(r, c) = static_cast<i64>((r + c) % 3) - 1;
    hct.setMatrix(m, 1, 1);
    hct.loadVector(0, 5, {1, 0, 1, 1, 0, 1, 0, 1}, 4, 0);

    FrontEnd fe({&hct});
    fe.run(assemble("amvm h0.p0 v5, 4\nhalt\n"));

    const std::vector<i64> x = {1, 0, 1, 1, 0, 1, 0, 1};
    // MVM results land in the reduction accumulator (VR 0, pipe 0).
    const int acc_bits = hct.accumulatorBits(4);
    const auto acc =
        hct.readVector(0, 0, static_cast<std::size_t>(acc_bits));
    const auto expected = hct.ace().referenceMvm(x);
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_EQ(acc[c], expected[c]) << "col " << c;
}

TEST(FrontEnd, ElementLoadProgram)
{
    hct::Hct hct(smallHct());
    // Table in pipeline 2: entry t = 2t across registers 0..1.
    for (u64 t = 0; t < 16; ++t)
        hct.dce().pipeline(2).setElement(t / 8, t % 8, 2 * t);
    hct.loadVector(1, 0, {0, 3, 5, 7, 9, 11, 13, 15}, 8, 0);

    FrontEnd fe({&hct});
    fe.run(assemble("eload h0.p1 v4, v0, p2, v0, 8\nhalt\n"));
    EXPECT_EQ(hct.readVector(1, 4, 8),
              (std::vector<i64>{0, 6, 10, 14, 18, 22, 26, 30}));
}

TEST(FrontEnd, IndependentHctsOverlap)
{
    hct::Hct a(smallHct()), b(smallHct());
    for (hct::Hct *h : {&a, &b}) {
        h->loadVector(0, 0, {1, 1, 1, 1, 1, 1, 1, 1}, 16, 0);
        h->loadVector(0, 1, {2, 2, 2, 2, 2, 2, 2, 2}, 16, 0);
    }
    FrontEnd fe({&a, &b});
    const auto both = fe.run(assemble(R"(
        dadd h0.p0 v2, v0, v1, 16
        dadd h1.p0 v2, v0, v1, 16
        halt
    )"));

    hct::Hct c(smallHct());
    c.loadVector(0, 0, {1, 1, 1, 1, 1, 1, 1, 1}, 16, 0);
    c.loadVector(0, 1, {2, 2, 2, 2, 2, 2, 2, 2}, 16, 0);
    FrontEnd single({&c});
    const auto one = single.run(assemble(
        "dadd h0.p0 v2, v0, v1, 16\nhalt\n"));

    // Two tiles in parallel cost barely more than one (decode only).
    EXPECT_LT(both.completion, 2 * one.completion);
    EXPECT_LE(both.completion, one.completion + 4);
}

TEST(FrontEnd, SameHctSerializesDependentMacros)
{
    hct::Hct hct(smallHct());
    hct.loadVector(0, 0, {5, 5, 5, 5, 5, 5, 5, 5}, 16, 0);
    hct.loadVector(0, 1, {3, 3, 3, 3, 3, 3, 3, 3}, 16, 0);
    FrontEnd fe({&hct});
    fe.run(assemble(R"(
        dadd h0.p0 v2, v0, v1, 16
        dadd h0.p0 v3, v2, v2, 16
        halt
    )"));
    EXPECT_EQ(hct.readVector(0, 3, 16),
              (std::vector<i64>{16, 16, 16, 16, 16, 16, 16, 16}));
}

TEST(FrontEnd, HaltStopsExecution)
{
    hct::Hct hct(smallHct());
    hct.loadVector(0, 0, {1, 1, 1, 1, 1, 1, 1, 1}, 16, 0);
    hct.loadVector(0, 1, {1, 1, 1, 1, 1, 1, 1, 1}, 16, 0);
    FrontEnd fe({&hct});
    fe.run(assemble(R"(
        halt
        dadd h0.p0 v2, v0, v1, 16
    )"));
    EXPECT_EQ(hct.readVector(0, 2, 16),
              (std::vector<i64>{0, 0, 0, 0, 0, 0, 0, 0}));
}

TEST(FrontEndDeath, MissingHctIsFatal)
{
    hct::Hct hct(smallHct());
    FrontEnd fe({&hct});
    EXPECT_THROW(fe.run(assemble("dadd h5.p0 v2, v0, v1, 16\n")),
                 std::runtime_error);
}

TEST(FrontEndDeath, NoHctsIsFatal)
{
    EXPECT_THROW(FrontEnd({}), std::runtime_error);
}

} // namespace
} // namespace isa
} // namespace darth
