/**
 * @file
 * Tests for SLO burn-rate accounting: the burn-rate math (SRE
 * convention with the trace as the window), rejected-request
 * handling, spec validation at the traffic front door, and the
 * end-to-end wiring through AdmissionController into TenantStats.
 */

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "serve/Admission.h"
#include "serve/ChipConfig.h"
#include "serve/ChipPool.h"
#include "serve/Slo.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

TEST(SloTest, DisabledSpecTracksNothing)
{
    SloStats stats;   // latencyTargetNs 0 = disabled
    EXPECT_FALSE(stats.spec.enabled());
    stats.recordLatency(100);
    stats.recordRejected();
    EXPECT_EQ(stats.eligible, 0u);
    EXPECT_EQ(stats.violations, 0u);
    EXPECT_EQ(stats.burnRate(), 0.0);
    EXPECT_EQ(stats.budgetRemaining(), 1.0);
}

TEST(SloTest, BurnRateIsViolationFractionOverBudget)
{
    SloStats stats;
    stats.spec = {1000, 0.9};   // 10% error budget
    // 8 hits, 2 misses over 10 eligible: fraction 0.2, burn 2.0.
    for (int i = 0; i < 8; ++i)
        stats.recordLatency(1000);   // at the target = a hit
    stats.recordLatency(1001);
    stats.recordLatency(5000);
    EXPECT_EQ(stats.eligible, 10u);
    EXPECT_EQ(stats.violations, 2u);
    EXPECT_DOUBLE_EQ(stats.violationFraction(), 0.2);
    EXPECT_NEAR(stats.burnRate(), 2.0, 1e-12);
    EXPECT_NEAR(stats.budgetRemaining(), -1.0, 1e-12);
}

TEST(SloTest, AllMissesBurnAtInverseBudget)
{
    // Every request violates a 1-cycle target: burn = 1 / budget.
    SloStats stats;
    stats.spec = {1, 0.9};
    for (int i = 0; i < 25; ++i)
        stats.recordLatency(100);
    EXPECT_NEAR(stats.burnRate(), 10.0, 1e-9);

    // No violations at all: burn exactly 0, full budget remaining.
    SloStats clean;
    clean.spec = {1 << 20, 0.999};
    for (int i = 0; i < 25; ++i)
        clean.recordLatency(100);
    EXPECT_EQ(clean.burnRate(), 0.0);
    EXPECT_EQ(clean.budgetRemaining(), 1.0);
}

TEST(SloTest, RejectionsAreViolations)
{
    SloStats stats;
    stats.spec = {1000, 0.5};   // 50% budget
    stats.recordLatency(10);    // hit
    stats.recordRejected();     // miss
    EXPECT_EQ(stats.eligible, 2u);
    EXPECT_EQ(stats.violations, 1u);
    EXPECT_NEAR(stats.burnRate(), 1.0, 1e-12);
}

TEST(SloTest, ZeroBudgetViolationBurnsInfinitely)
{
    // validateSpec rejects availability 1.0 at the front door, but
    // the math itself must not divide by zero if handed one.
    SloStats stats;
    stats.spec = {10, 1.0};
    stats.recordLatency(100);
    EXPECT_TRUE(std::isinf(stats.burnRate()));
}

TEST(SloTest, ValidateSpecRejectsBadAvailability)
{
    TenantSpec spec;
    spec.name = "t";
    spec.kind = WorkloadKind::Micro;
    spec.slo = {1000, 1.0};
    EXPECT_THROW(TrafficGen::validateSpec(spec),
                 std::invalid_argument);
    spec.slo = {1000, 0.0};
    EXPECT_THROW(TrafficGen::validateSpec(spec),
                 std::invalid_argument);
    spec.slo = {1000, -0.5};
    EXPECT_THROW(TrafficGen::validateSpec(spec),
                 std::invalid_argument);
    // In (0, 1) is fine; so is any availability when disabled.
    spec.slo = {1000, 0.999};
    EXPECT_NO_THROW(TrafficGen::validateSpec(spec));
    spec.slo = {0, 1.0};
    EXPECT_NO_THROW(TrafficGen::validateSpec(spec));
}

TEST(SloTest, AdmissionRunTracksPerTenantBurn)
{
    TrafficGen gen(77);
    PoolConfig pool_cfg;
    pool_cfg.chip = uniformChipSpec(3).chip;
    pool_cfg.numChips = 1;
    ChipPool pool(pool_cfg);

    std::vector<TenantSpec> specs(3);
    specs[0].name = "impossible";
    specs[0].kind = WorkloadKind::Micro;
    specs[0].ratePerKns = 2.0;
    specs[0].slo = {1, 0.9};   // every completion misses
    specs[1].name = "unreachable";
    specs[1].kind = WorkloadKind::Micro;
    specs[1].ratePerKns = 2.0;
    specs[1].slo = {Cycle{1} << 40, 0.999};   // nothing misses
    specs[2].name = "untracked";
    specs[2].kind = WorkloadKind::Micro;
    specs[2].ratePerKns = 2.0;   // SLO disabled

    auto tenants = buildTenants(pool, gen, specs);
    AdmissionConfig cfg;
    cfg.queueDepth = 2;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(gen.trace(specs, 20000));

    const SloStats &impossible = report.tenants[0].slo;
    ASSERT_GT(report.tenants[0].completed, 0u);
    EXPECT_EQ(impossible.eligible, report.tenants[0].completed);
    EXPECT_EQ(impossible.violations, impossible.eligible);
    EXPECT_NEAR(impossible.burnRate(), 10.0, 1e-9);

    const SloStats &unreachable = report.tenants[1].slo;
    ASSERT_GT(report.tenants[1].completed, 0u);
    EXPECT_EQ(unreachable.eligible, report.tenants[1].completed);
    EXPECT_EQ(unreachable.violations, 0u);
    EXPECT_EQ(unreachable.burnRate(), 0.0);

    EXPECT_EQ(report.tenants[2].slo.eligible, 0u);
    EXPECT_EQ(report.tenants[2].slo.burnRate(), 0.0);
}

TEST(SloTest, RejectedRequestsBurnBudget)
{
    TrafficGen gen(78);
    PoolConfig pool_cfg;
    pool_cfg.chip = uniformChipSpec(1).chip;
    pool_cfg.numChips = 1;
    ChipPool pool(pool_cfg);

    std::vector<TenantSpec> specs(1);
    specs[0].name = "hot";
    specs[0].kind = WorkloadKind::Micro;
    specs[0].ratePerKns = 50.0;   // far past one tile's capacity
    specs[0].slo = {Cycle{1} << 40, 0.9};   // only rejections miss

    auto tenants = buildTenants(pool, gen, specs);
    AdmissionConfig cfg;
    cfg.queueDepth = 1;
    cfg.overflow = OverflowPolicy::Reject;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(gen.trace(specs, 20000));

    ASSERT_GT(report.rejected, 0u);
    const SloStats &slo = report.tenants[0].slo;
    EXPECT_EQ(slo.eligible,
              report.tenants[0].completed +
                  report.tenants[0].rejected);
    EXPECT_EQ(slo.violations, report.tenants[0].rejected);
    EXPECT_GT(slo.burnRate(), 0.0);
}

} // namespace
} // namespace serve
} // namespace darth
