/**
 * @file
 * Fleet lifecycle tests: tenant churn (lazy placement, reclaim on
 * departure), live migration (mid-graph, aborted, load-balancing),
 * and autoscaling — all asserting the standing serve invariants:
 * outputs bit-identical to a static run of the same trace, begun
 * work always finishes, lifecycle events journaled.
 */

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "serve/Admission.h"
#include "serve/ChipConfig.h"
#include "serve/ChipPool.h"
#include "serve/FleetController.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

PoolConfig
uniformPool(std::size_t chips, std::size_t hcts,
            PlacementPolicy placement = PlacementPolicy::LeastLoaded)
{
    PoolConfig cfg;
    cfg.chips.assign(chips, uniformChipSpec(hcts));
    cfg.placement = placement;
    return cfg;
}

TenantSpec
microSpec(const std::string &name, double rate, WallNs arrive = 0,
          WallNs depart = 0)
{
    TenantSpec spec;
    spec.name = name;
    spec.kind = WorkloadKind::Micro;
    spec.ratePerKns = rate;
    spec.arriveNs = arrive;
    spec.departNs = depart;
    return spec;
}

/** The static twin: same specs (windows ignored — every placement
 *  eager), same explicit trace, no fleet. */
ServeReport
staticRun(const PoolConfig &pcfg, const std::vector<TenantSpec> &specs,
          const std::vector<ServeRequest> &trace,
          const AdmissionConfig &acfg, u64 traffic_seed)
{
    ChipPool pool(pcfg);
    TrafficGen gen(traffic_seed);
    AdmissionController ac(pool, buildTenants(pool, gen, specs), acfg);
    return ac.run(trace);
}

/** Count journal events of one kind. */
std::size_t
countKind(const journal::Journal &jr, journal::EventKind kind)
{
    std::size_t n = 0;
    for (const auto &e : jr.events())
        if (e.kind == kind)
            n += 1;
    return n;
}

TEST(Fleet, ChurnCreatesAndReclaimsPlacements)
{
    const u64 seed = 71;
    const PoolConfig pcfg = uniformPool(2, 2);
    std::vector<TenantSpec> specs = {
        microSpec("stayer", 2.0),
        microSpec("visitor", 3.0, /*arrive=*/400, /*depart=*/900)};
    TrafficGen gen(seed);
    const std::vector<ServeRequest> trace = gen.trace(specs, 1400);
    ASSERT_FALSE(trace.empty());
    // The visitor's requests sit inside its window only.
    bool visitor_seen = false;
    for (const ServeRequest &req : trace)
        if (req.tenant == 1) {
            visitor_seen = true;
            EXPECT_GE(req.arrival, 400u);
            EXPECT_LT(req.arrival, 900u);
        }
    ASSERT_TRUE(visitor_seen) << "trace never exercises the churn";

    AdmissionConfig acfg;
    acfg.queueDepth = 2;

    FleetConfig fcfg;
    fcfg.migration = false;
    fcfg.autoscale = false;
    fcfg.checkIntervalNs = 300;

    ChipPool pool(pcfg);
    TrafficGen fleet_gen(seed);
    FleetController fleet(pool, fleet_gen, specs, fcfg);
    AdmissionController ac(pool, fleet, acfg);
    journal::Journal jr;
    ac.setJournal(&jr);
    const ServeReport report = ac.run(trace);
    ac.setJournal(nullptr);

    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_EQ(report.fleet.arrivals, 1u);
    EXPECT_EQ(report.fleet.departures, 1u);
    EXPECT_EQ(countKind(jr, journal::EventKind::TenantArrive), 1u);
    EXPECT_EQ(countKind(jr, journal::EventKind::TenantDepart), 1u);
    for (const auto &e : jr.events()) {
        if (e.kind == journal::EventKind::TenantArrive) {
            EXPECT_EQ(e.cycle, 400u);
        }
        if (e.kind == journal::EventKind::TenantDepart) {
            EXPECT_GE(e.cycle, 900u);
        }
    }
    // The visitor's placement was reclaimed: only the stayer's
    // model is live at run end.
    std::size_t live = 0;
    for (std::size_t c = 0; c < 2; ++c)
        live += pool.liveModels(c);
    EXPECT_EQ(live, 1u);

    // Bit-identical outputs against the static twin.
    const ServeReport twin =
        staticRun(pcfg, specs, trace, acfg, seed);
    EXPECT_EQ(report.outputChecksum, twin.outputChecksum);
}

TEST(Fleet, MidGraphMigrationFinishesBegunWorkAndKeepsChecksum)
{
    const u64 seed = 72;
    const PoolConfig pcfg =
        uniformPool(2, 9, PlacementPolicy::CostAware);
    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 1.2;
    TrafficGen gen(seed);
    const std::vector<ServeRequest> trace = gen.trace(specs, 4000);
    ASSERT_GE(trace.size(), 3u);

    AdmissionConfig acfg;
    acfg.queueDepth = 2;
    acfg.granularity = Granularity::Stage;

    FleetConfig fcfg;
    fcfg.autoscale = false;
    fcfg.checkIntervalNs = 250;
    // Any backlog against an idle peer triggers a migration, so the
    // single tenant ping-pongs between the chips.
    fcfg.migrateHighNs = 1;

    ChipPool pool(pcfg);
    TrafficGen fleet_gen(seed);
    FleetController fleet(pool, fleet_gen, specs, fcfg);
    AdmissionController ac(pool, fleet, acfg);
    journal::Journal jr;
    ac.setJournal(&jr);
    const ServeReport report = ac.run(trace);
    ac.setJournal(nullptr);

    EXPECT_GE(report.fleet.migrations, 1u);
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.rejected, 0u);

    // Begun inferences never change chips: every stage event of one
    // request names the same chip, even across migrations.
    std::map<u64, u64> stage_chip;
    std::size_t first_migration = jr.size();
    bool straddled = false;
    for (std::size_t i = 0; i < jr.size(); ++i) {
        const auto &e = jr.event(i);
        if (e.kind == journal::EventKind::MigrationBegin &&
            first_migration == jr.size())
            first_migration = i;
        if (e.kind != journal::EventKind::StageSubmit &&
            e.kind != journal::EventKind::StageComplete)
            continue;
        const auto it = stage_chip.find(e.a);
        if (it == stage_chip.end()) {
            stage_chip[e.a] = e.c;
            continue;
        }
        EXPECT_EQ(it->second, e.c)
            << "request " << e.a << " changed chips mid-graph";
        // A stage event after the first migration for a request
        // begun before it: a graph straddled the migration.
        if (i > first_migration && first_migration < jr.size())
            straddled = true;
    }
    EXPECT_TRUE(straddled)
        << "no in-flight graph straddled a migration; the scenario "
           "is vacuous";

    const ServeReport twin =
        staticRun(pcfg, specs, trace, acfg, seed);
    EXPECT_EQ(report.outputChecksum, twin.outputChecksum);
}

TEST(Fleet, MigrationAbortsWhenNoOtherChipFits)
{
    const u64 seed = 73;
    // The peer slot is a single-tile chip the CNN cannot fit on, so
    // every migration attempt must abort and the placement keeps
    // serving where it is.
    PoolConfig pcfg;
    pcfg.chips = {uniformChipSpec(9), uniformChipSpec(1)};
    pcfg.placement = PlacementPolicy::LeastLoaded;
    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 1.0;
    TrafficGen gen(seed);
    const std::vector<ServeRequest> trace = gen.trace(specs, 3000);
    ASSERT_GE(trace.size(), 2u);

    AdmissionConfig acfg;
    acfg.queueDepth = 2;

    FleetConfig fcfg;
    fcfg.autoscale = false;
    fcfg.checkIntervalNs = 250;
    fcfg.migrateHighNs = 1;

    ChipPool pool(pcfg);
    TrafficGen fleet_gen(seed);
    FleetController fleet(pool, fleet_gen, specs, fcfg);
    AdmissionController ac(pool, fleet, acfg);
    const ServeReport report = ac.run(trace);

    EXPECT_GE(report.fleet.migrationsAborted, 1u);
    EXPECT_EQ(report.fleet.migrations, 0u);
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.rejected, 0u);

    const ServeReport twin =
        staticRun(pcfg, specs, trace, acfg, seed);
    EXPECT_EQ(report.outputChecksum, twin.outputChecksum);
}

TEST(Fleet, DepartWithInFlightStagesFinishesBegunWork)
{
    const u64 seed = 74;
    const PoolConfig pcfg = uniformPool(1, 9);
    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 8.0;
    specs[0].departNs = 700;
    TrafficGen gen(seed);
    const std::vector<ServeRequest> trace = gen.trace(specs, 2000);
    ASSERT_GE(trace.size(), 2u);
    for (const ServeRequest &req : trace)
        EXPECT_LT(req.arrival, 700u);

    AdmissionConfig acfg;
    acfg.queueDepth = 2;
    acfg.granularity = Granularity::Stage;

    FleetConfig fcfg;
    fcfg.migration = false;
    fcfg.autoscale = false;
    fcfg.checkIntervalNs = 200;

    ChipPool pool(pcfg);
    TrafficGen fleet_gen(seed);
    FleetController fleet(pool, fleet_gen, specs, fcfg);
    AdmissionController ac(pool, fleet, acfg);
    journal::Journal jr;
    ac.setJournal(&jr);
    const ServeReport report = ac.run(trace);
    ac.setJournal(nullptr);

    // Departure never drops begun work: the whole backlog (stages
    // included) finishes after 700 ns, then the placement is
    // reclaimed.
    EXPECT_EQ(report.completed, trace.size());
    EXPECT_EQ(report.rejected, 0u);
    EXPECT_EQ(report.fleet.departures, 1u);
    EXPECT_EQ(pool.liveModels(0), 0u);
    bool saw_depart = false;
    for (const auto &e : jr.events())
        if (e.kind == journal::EventKind::TenantDepart) {
            saw_depart = true;
            EXPECT_GE(e.cycle, 700u);
            EXPECT_EQ(e.d, 700u);
        }
    EXPECT_TRUE(saw_depart);

    const ServeReport twin =
        staticRun(pcfg, specs, trace, acfg, seed);
    EXPECT_EQ(report.outputChecksum, twin.outputChecksum);
}

TEST(Fleet, AutoscaleDrainsQuietSlotsAndReactivatesUnderLoad)
{
    const u64 seed = 75;
    const PoolConfig pcfg = uniformPool(3, 2);
    // One diurnal tenant: a heavy on-phase, then a long quiet phase,
    // repeating. Quiet phases drain slots; the next burst brings one
    // back.
    std::vector<TenantSpec> specs = {microSpec("diurnal", 6.0)};
    specs[0].burst.onNs = 600;
    specs[0].burst.offNs = 1400;
    TrafficGen gen(seed);
    const std::vector<ServeRequest> trace = gen.trace(specs, 6000);
    ASSERT_GE(trace.size(), 4u);

    AdmissionConfig acfg;
    acfg.queueDepth = 1;

    FleetConfig fcfg;
    fcfg.checkIntervalNs = 150;
    fcfg.backlogHighNs = 60;
    fcfg.backlogLowNs = 10;
    fcfg.migrateHighNs = 40;
    fcfg.minActive = 1;

    ChipPool pool(pcfg);
    TrafficGen fleet_gen(seed);
    FleetController fleet(pool, fleet_gen, specs, fcfg);
    AdmissionController ac(pool, fleet, acfg);
    const ServeReport report = ac.run(trace);

    EXPECT_EQ(report.completed, trace.size());
    EXPECT_GE(report.fleet.chipDowns, 1u);
    EXPECT_GE(report.fleet.chipUps, 1u);

    const ServeReport twin =
        staticRun(pcfg, specs, trace, acfg, seed);
    EXPECT_EQ(report.outputChecksum, twin.outputChecksum);
}

} // namespace
} // namespace serve
} // namespace darth
