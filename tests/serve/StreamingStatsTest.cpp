/**
 * @file
 * Streaming serve telemetry: the O(1)-memory path (histogram
 * percentiles, exact streaming aggregates, the rolling output
 * checksum of AdmissionController::runStream) must agree with the
 * O(requests) retained path it replaces — exactly for counts, sums
 * (push-order), extrema, and checksums; within one bucket width for
 * percentiles — across QoS policies, overflow policies, admission
 * granularities, and the fleet lifecycle.
 */

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/Stats.h"
#include "journal/Replayer.h"
#include "serve/Admission.h"
#include "serve/ChipPool.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

/** One 2-chip scenario per seed, cycling QoS/overflow/granularity so
 *  the retained-vs-streaming comparison spans the admission modes. */
journal::ServeRunSetup
drawSetup(u64 seed)
{
    journal::ServeRunSetup setup;
    setup.uniformPool = false;
    setup.slots = {{journal::SlotKind::Uniform, 8, 1.0},
                   {journal::SlotKind::Uniform, 8, 2.0}};
    setup.placement = PlacementPolicy::LeastLoaded;
    setup.trafficSeed = 100 + seed;
    setup.horizon = 3000;
    setup.admission.queueDepth = 1 + seed % 3;
    const QosPolicy qos[] = {QosPolicy::Fifo, QosPolicy::RoundRobin,
                             QosPolicy::WeightedFair};
    setup.admission.qos = qos[seed % 3];
    setup.admission.overflow = seed % 2 == 0
                                   ? OverflowPolicy::Block
                                   : OverflowPolicy::Reject;
    setup.admission.granularity = seed % 2 == 0
                                      ? Granularity::Stage
                                      : Granularity::Inference;

    setup.tenants.resize(3);
    setup.tenants[0].name = "micro_a";
    setup.tenants[0].kind = WorkloadKind::Micro;
    setup.tenants[0].weight = 2.0;
    setup.tenants[0].ratePerKns = 3.0;
    setup.tenants[1].name = "micro_b";
    setup.tenants[1].kind = WorkloadKind::Micro;
    setup.tenants[1].ratePerKns = 2.0;
    setup.tenants[2].name = "cnn_infer";
    setup.tenants[2].kind = WorkloadKind::CnnInfer;
    setup.tenants[2].ratePerKns = 0.2;
    return setup;
}

TEST(StreamingStats, HistogramAgreesWithRetainedSamples)
{
    for (u64 seed = 0; seed < 6; ++seed) {
        journal::ServeRunSetup setup = drawSetup(seed);
        setup.admission.retainSamples = true;
        const journal::ServeRunRecord rec =
            journal::recordServeRun(setup);
        ASSERT_GT(rec.report.completed, 0u) << "seed " << seed;

        for (const TenantStats &t : rec.report.tenants) {
            // Exact aggregates: count, extrema, and a sum that is
            // bit-equal to the push-order fold over the retained
            // vector (NOT summarize().mean * count — summarize sums
            // in sorted order, which rounds differently).
            ASSERT_EQ(t.latencyHist.count(), t.latency.size())
                << "seed " << seed << " tenant " << t.name;
            if (t.latency.empty())
                continue;
            double fold = 0.0;
            double lo = t.latency.front();
            double hi = t.latency.front();
            for (const double v : t.latency) {
                fold += v;
                lo = std::min(lo, v);
                hi = std::max(hi, v);
            }
            EXPECT_EQ(t.latencyHist.sum(), fold)
                << "seed " << seed << " tenant " << t.name;
            EXPECT_EQ(t.latencyHist.min(), lo);
            EXPECT_EQ(t.latencyHist.max(), hi);

            // Percentiles: the histogram reports the lower edge of
            // the nearest-rank sample's bucket — never above the
            // retained value, and below it by less than one width.
            const SampleSummary retained = summarize(t.latency);
            const SampleSummary streamed = t.latencyHist.summary();
            const double width = t.latencyHist.bucketWidth();
            for (const auto &[exact, bucketed] :
                 {std::pair<double, double>{retained.p50,
                                            streamed.p50},
                  {retained.p95, streamed.p95},
                  {retained.p99, streamed.p99}}) {
                EXPECT_LE(bucketed, exact)
                    << "seed " << seed << " tenant " << t.name;
                EXPECT_LT(exact - bucketed, width)
                    << "seed " << seed << " tenant " << t.name;
            }

            // Queueing histogram obeys the same contract.
            ASSERT_EQ(t.queueingHist.count(), t.queueing.size());
            const double qexact = summarize(t.queueing).p95;
            const double qbucketed = t.queueingHist.percentile(95.0);
            EXPECT_LE(qbucketed, qexact);
            EXPECT_LT(qexact - qbucketed,
                      t.queueingHist.bucketWidth());
        }
    }
}

TEST(StreamingStats, RollingChecksumMatchesFullRetention)
{
    // runStream's rolling FNV fold over outputs in arrival order
    // must equal run()'s fold over the retained output vectors —
    // across QoS/overflow/granularity draws, including Reject runs
    // (rejected requests contribute an empty fold on both paths).
    for (u64 seed = 0; seed < 6; ++seed) {
        const journal::ServeRunSetup setup = drawSetup(seed);
        const journal::ServeRunRecord rec =
            journal::recordServeRun(setup);

        VectorSource source(rec.trace);
        journal::Journal streamed_journal;
        const ServeReport streamed = journal::recordServeRunStream(
            setup, source, streamed_journal);

        EXPECT_EQ(streamed.outputChecksum,
                  rec.report.outputChecksum)
            << "seed " << seed;
        EXPECT_EQ(streamed.completed, rec.report.completed);
        EXPECT_EQ(streamed.rejected, rec.report.rejected);
        EXPECT_EQ(streamed.makespanNs, rec.report.makespanNs);
        ASSERT_EQ(streamed.tenants.size(),
                  rec.report.tenants.size());
        for (std::size_t t = 0; t < streamed.tenants.size(); ++t) {
            const TenantStats &a = streamed.tenants[t];
            const TenantStats &b = rec.report.tenants[t];
            EXPECT_EQ(a.completed, b.completed) << a.name;
            EXPECT_EQ(a.latencyHist.count(), b.latencyHist.count());
            EXPECT_EQ(a.latencyHist.sum(), b.latencyHist.sum());
            EXPECT_EQ(a.serviceNs, b.serviceNs);
        }
    }
}

TEST(StreamingStats, StreamedFleetRunMatchesVectorFleetRun)
{
    journal::ServeRunSetup setup = drawSetup(0);
    setup.fleet = true;
    setup.fleetCfg.checkIntervalNs = 400;
    setup.fleetCfg.backlogHighNs = 2000;
    setup.fleetCfg.backlogLowNs = 100;
    setup.fleetCfg.migrateHighNs = 1500;
    setup.tenants[1].arriveNs = setup.horizon / 4;
    setup.tenants[1].departNs = (setup.horizon * 3) / 4;

    const journal::ServeRunRecord rec = journal::recordServeRun(setup);
    ASSERT_GT(rec.report.completed, 0u);

    VectorSource source(rec.trace);
    journal::Journal streamed_journal;
    const ServeReport streamed = journal::recordServeRunStream(
        setup, source, streamed_journal);
    EXPECT_EQ(streamed.outputChecksum, rec.report.outputChecksum);
    EXPECT_EQ(streamed.completed, rec.report.completed);
    EXPECT_EQ(streamed.fleet.arrivals, rec.report.fleet.arrivals);
    EXPECT_EQ(streamed.fleet.departures,
              rec.report.fleet.departures);
}

TEST(StreamingStats, RetainSamplesOffLeavesVectorsEmpty)
{
    journal::ServeRunSetup setup = drawSetup(0);
    setup.admission.retainSamples = false;
    const journal::ServeRunRecord rec = journal::recordServeRun(setup);
    ASSERT_GT(rec.report.completed, 0u);
    for (const TenantStats &t : rec.report.tenants) {
        EXPECT_TRUE(t.latency.empty()) << t.name;
        EXPECT_TRUE(t.queueing.empty()) << t.name;
        EXPECT_TRUE(t.service.empty()) << t.name;
        EXPECT_TRUE(t.doneNs.empty()) << t.name;
        // The summaries fall back to the always-on histograms.
        EXPECT_EQ(t.latencySummary().count, t.completed) << t.name;
        EXPECT_EQ(t.queueingSummary().count, t.completed) << t.name;
    }
}

TEST(StreamingStats, RunStreamRejectsCollectOutputs)
{
    const journal::ServeRunSetup setup = drawSetup(0);
    TrafficGen gen(setup.trafficSeed);
    ChipPool pool(setup.poolConfig());
    auto tenants = buildTenants(pool, gen, setup.tenants);
    AdmissionConfig cfg = setup.admission;
    cfg.collectOutputs = true;
    AdmissionController ac(pool, tenants, cfg);
    TraceStream source(setup.trafficSeed, setup.tenants,
                       setup.horizon);
    EXPECT_THROW(ac.runStream(source), std::invalid_argument);
}

TEST(StreamingStats, TraceStreamIsTheLazyTrace)
{
    const journal::ServeRunSetup setup = drawSetup(1);
    TrafficGen gen(setup.trafficSeed);
    const std::vector<ServeRequest> trace =
        gen.trace(setup.tenants, setup.horizon);
    ASSERT_GT(trace.size(), 10u);

    // Draining the stream reproduces the materialized trace.
    TraceStream stream(setup.trafficSeed, setup.tenants,
                       setup.horizon);
    ServeRequest req;
    std::size_t i = 0;
    WallNs prev = 0;
    while (stream.next(req)) {
        ASSERT_LT(i, trace.size());
        EXPECT_EQ(req.arrival, trace[i].arrival);
        EXPECT_EQ(req.tenant, trace[i].tenant);
        EXPECT_EQ(req.input, trace[i].input);
        EXPECT_GE(req.arrival, prev);
        prev = req.arrival;
        ++i;
    }
    EXPECT_EQ(i, trace.size());

    // CappedSource yields exactly the trace's prefix.
    TraceStream stream2(setup.trafficSeed, setup.tenants,
                        setup.horizon);
    CappedSource capped(stream2, 5);
    for (std::size_t k = 0; k < 5; ++k) {
        ASSERT_TRUE(capped.next(req));
        EXPECT_EQ(req.arrival, trace[k].arrival);
    }
    EXPECT_FALSE(capped.next(req));
}

} // namespace
} // namespace serve
} // namespace darth
