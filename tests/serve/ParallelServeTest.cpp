/**
 * @file
 * Bit-identity of the per-chip parallel drain: running the same
 * trace through AdmissionController with N worker threads must
 * produce byte-for-byte the report a single-threaded run produces —
 * checksums, counts, makespan, every per-request latency sample, and
 * the event journal's binary serialization. The `threads` knob is a
 * host-side throughput control, never a semantic one.
 */

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "journal/Replayer.h"
#include "serve/Admission.h"
#include "serve/ChipConfig.h"
#include "serve/ChipPool.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

runtime::ChipConfig
smallChip()
{
    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;
    cfg.hct.ace.arrayCols = 8;
    // 6 tiles: one per micro tenant plus the 5 contiguous tiles the
    // TinyCnn inference placement needs on a single chip.
    cfg.numHcts = 6;
    return cfg;
}

PoolConfig
poolConfig(std::size_t chips)
{
    PoolConfig cfg;
    cfg.chip = smallChip();
    cfg.numChips = chips;
    cfg.placement = PlacementPolicy::LeastLoaded;
    return cfg;
}

/** Four micro tenants with uneven weights, one mixed-in inference
 *  tenant, spread by placement across a 4-chip pool. */
std::vector<TenantSpec>
mixedSpecs()
{
    std::vector<TenantSpec> specs;
    for (std::size_t i = 0; i < 4; ++i) {
        TenantSpec spec;
        spec.name = "micro" + std::to_string(i);
        spec.kind = WorkloadKind::Micro;
        spec.weight = 1.0 + static_cast<double>(i);
        spec.ratePerKns = 4.0;
        specs.push_back(spec);
    }
    TenantSpec infer;
    infer.name = "cnninfer";
    infer.kind = WorkloadKind::CnnInfer;
    infer.weight = 2.0;
    infer.ratePerKns = 0.5;
    specs.push_back(infer);
    return specs;
}

/** One full serve run at the given thread count over a fixed
 *  scenario (seeded trace, 4 chips, weighted-fair, outputs kept). */
ServeReport
runAt(std::size_t threads)
{
    TrafficGen gen(4242);
    ChipPool pool(poolConfig(4));
    const auto specs = mixedSpecs();
    auto tenants = buildTenants(pool, gen, specs);
    AdmissionConfig cfg;
    cfg.queueDepth = 2;
    cfg.qos = QosPolicy::WeightedFair;
    cfg.overflow = OverflowPolicy::Block;
    cfg.collectOutputs = true;
    cfg.retainSamples = true;
    cfg.threads = threads;
    AdmissionController ac(pool, tenants, cfg);
    return ac.run(gen.trace(specs, 4000));
}

void
expectReportsIdentical(const ServeReport &one, const ServeReport &many)
{
    EXPECT_EQ(one.outputChecksum, many.outputChecksum);
    EXPECT_EQ(one.completed, many.completed);
    EXPECT_EQ(one.rejected, many.rejected);
    EXPECT_EQ(one.makespanNs, many.makespanNs);
    EXPECT_EQ(one.outputs, many.outputs);
    ASSERT_EQ(one.tenants.size(), many.tenants.size());
    for (std::size_t t = 0; t < one.tenants.size(); ++t) {
        const TenantStats &a = one.tenants[t];
        const TenantStats &b = many.tenants[t];
        EXPECT_EQ(a.completed, b.completed) << a.name;
        EXPECT_EQ(a.rejected, b.rejected) << a.name;
        EXPECT_EQ(a.mvms, b.mvms) << a.name;
        // Exact double equality on every sample: the merge at the
        // join must preserve order and value, not just summaries.
        EXPECT_EQ(a.latency, b.latency) << a.name;
        EXPECT_EQ(a.queueing, b.queueing) << a.name;
        EXPECT_EQ(a.service, b.service) << a.name;
        EXPECT_EQ(a.doneNs, b.doneNs) << a.name;
        EXPECT_EQ(a.serviceNs, b.serviceNs) << a.name;
    }
    ASSERT_EQ(one.chips.size(), many.chips.size());
    for (std::size_t c = 0; c < one.chips.size(); ++c) {
        EXPECT_EQ(one.chips[c].completed, many.chips[c].completed);
        EXPECT_EQ(one.chips[c].mvms, many.chips[c].mvms);
        EXPECT_EQ(one.chips[c].serviceNs,
                  many.chips[c].serviceNs);
    }
}

TEST(ParallelServe, FourThreadsBitIdenticalToOne)
{
    const ServeReport one = runAt(1);
    const ServeReport four = runAt(4);
    ASSERT_GT(one.completed, 0u);
    expectReportsIdentical(one, four);
}

TEST(ParallelServe, MoreThreadsThanChipsIsStillIdentical)
{
    // Oversubscription (threads > chips) exercises workers that find
    // the queue empty and must exit without contributing.
    const ServeReport one = runAt(1);
    const ServeReport eight = runAt(8);
    expectReportsIdentical(one, eight);
}

TEST(ParallelServe, JournalBytesIdenticalAcrossThreadCounts)
{
    // The recorded event journal — not just the report — must come
    // out byte-identical, because replays and audit trails are
    // defined over the serialized stream. `threads` is deliberately
    // not a journal field, so the two setups differ only in host
    // parallelism.
    journal::ServeRunSetup setup;
    setup.slots = {{journal::SlotKind::Default, 2, 1.0},
                   {journal::SlotKind::Default, 2, 1.0},
                   {journal::SlotKind::Default, 2, 1.0},
                   {journal::SlotKind::Default, 2, 1.0}};
    setup.placement = PlacementPolicy::LeastLoaded;
    setup.trafficSeed = 911;
    setup.horizon = 3000;
    setup.admission.queueDepth = 2;
    setup.admission.qos = QosPolicy::WeightedFair;
    setup.admission.overflow = OverflowPolicy::Block;

    std::vector<TenantSpec> specs;
    for (std::size_t i = 0; i < 4; ++i) {
        TenantSpec spec;
        spec.name = "micro" + std::to_string(i);
        spec.kind = WorkloadKind::Micro;
        spec.ratePerKns = 3.0;
        specs.push_back(spec);
    }
    setup.tenants = specs;

    setup.admission.threads = 1;
    const journal::ServeRunRecord serial =
        journal::recordServeRun(setup);
    setup.admission.threads = 4;
    const journal::ServeRunRecord parallel =
        journal::recordServeRun(setup);

    std::stringstream serial_bytes;
    serial.journal.writeBinary(serial_bytes);
    std::stringstream parallel_bytes;
    parallel.journal.writeBinary(parallel_bytes);
    ASSERT_GT(serial.report.completed, 0u);
    EXPECT_EQ(serial.report.outputChecksum,
              parallel.report.outputChecksum);
    EXPECT_EQ(serial_bytes.str(), parallel_bytes.str());
}

} // namespace
} // namespace serve
} // namespace darth
