/**
 * @file
 * Tests for the multi-chip serving pool: placement sharding policies,
 * affinity sharing, capacity exhaustion, and request routing.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/Random.h"
#include "serve/ChipPool.h"

namespace darth
{
namespace serve
{
namespace
{

runtime::ChipConfig
smallChip(std::size_t num_hcts = 4)
{
    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

PoolConfig
poolConfig(std::size_t chips, std::size_t hcts_per_chip,
           PlacementPolicy policy)
{
    PoolConfig cfg;
    cfg.chip = smallChip(hcts_per_chip);
    cfg.numChips = chips;
    cfg.placement = policy;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(i64{0}, i64{1});
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

TEST(ChipPool, RoundRobinSpreadsPlacements)
{
    ChipPool pool(poolConfig(4, 2, PlacementPolicy::RoundRobin));
    for (std::size_t i = 0; i < 4; ++i) {
        const ModelRef m =
            pool.placeModel(0, randomMatrix(8, 8, 600 + i), 1, 1);
        EXPECT_EQ(pool.modelChip(m), i);
    }
    // Second lap wraps back to chip 0.
    const ModelRef again =
        pool.placeModel(0, randomMatrix(8, 8, 610), 1, 1);
    EXPECT_EQ(pool.modelChip(again), 0u);
}

TEST(ChipPool, RoundRobinSkipsFullChips)
{
    // One tile per chip: a full chip cannot take the next placement,
    // the rotation walks past it.
    ChipPool pool(poolConfig(3, 1, PlacementPolicy::RoundRobin));
    const ModelRef a =
        pool.placeModel(0, randomMatrix(8, 8, 620), 1, 1);
    const ModelRef b =
        pool.placeModel(0, randomMatrix(8, 8, 621), 1, 1);
    const ModelRef c =
        pool.placeModel(0, randomMatrix(8, 8, 622), 1, 1);
    EXPECT_EQ(pool.modelChip(a), 0u);
    EXPECT_EQ(pool.modelChip(b), 1u);
    EXPECT_EQ(pool.modelChip(c), 2u);
    EXPECT_THROW(pool.placeModel(0, randomMatrix(8, 8, 623), 1, 1),
                 std::runtime_error);
}

TEST(ChipPool, LeastLoadedPicksEmptiestChip)
{
    ChipPool pool(poolConfig(3, 2, PlacementPolicy::LeastLoaded));
    // All chips empty: ties break to the lowest index.
    const ModelRef a =
        pool.placeModel(0, randomMatrix(8, 8, 630), 1, 1);
    EXPECT_EQ(pool.modelChip(a), 0u);
    // Chip 0 now has fewer free tiles than chips 1 and 2.
    const ModelRef b =
        pool.placeModel(0, randomMatrix(8, 8, 631), 1, 1);
    EXPECT_EQ(pool.modelChip(b), 1u);
    const ModelRef c =
        pool.placeModel(0, randomMatrix(8, 8, 632), 1, 1);
    EXPECT_EQ(pool.modelChip(c), 2u);
    // Back to even load: lowest index again.
    const ModelRef d =
        pool.placeModel(0, randomMatrix(8, 8, 633), 1, 1);
    EXPECT_EQ(pool.modelChip(d), 0u);
}

TEST(ChipPool, MatrixAffinitySharesPlacements)
{
    ChipPool pool(poolConfig(2, 2, PlacementPolicy::MatrixAffinity));
    const MatrixI m = randomMatrix(8, 8, 640);
    const ModelRef first = pool.placeModel(7, m, 1, 1);
    const std::size_t free_after_first =
        pool.freeHcts(pool.modelChip(first));
    // Same key: the existing placement is returned, no tiles consumed.
    const ModelRef second = pool.placeModel(7, m, 1, 1);
    EXPECT_EQ(first, second);
    EXPECT_EQ(pool.freeHcts(pool.modelChip(first)), free_after_first);
    // A different key places fresh (on the emptier chip).
    const ModelRef other =
        pool.placeModel(8, randomMatrix(8, 8, 641), 1, 1);
    EXPECT_NE(other, first);
    EXPECT_NE(pool.modelChip(other), pool.modelChip(first));
    // Key 0 opts out of sharing even under MatrixAffinity.
    const ModelRef anon_a = pool.placeModel(0, m, 1, 1);
    const ModelRef anon_b = pool.placeModel(0, m, 1, 1);
    EXPECT_NE(anon_a, anon_b);
}

TEST(ChipPool, AffinityKeyReuseWithDifferentWeightsIsFatal)
{
    // Returning the existing placement for a key while silently
    // ignoring different offered weights would make every later MVM
    // wrong; it must fail loudly instead.
    ChipPool pool(poolConfig(1, 2, PlacementPolicy::MatrixAffinity));
    (void)pool.placeModel(9, randomMatrix(8, 8, 660), 1, 1);
    EXPECT_THROW(pool.placeModel(9, randomMatrix(8, 8, 661), 1, 1),
                 std::runtime_error);
    // Same shape, one differing element: still fatal.
    MatrixI tweaked = randomMatrix(8, 8, 660);
    tweaked(3, 3) ^= 1;
    EXPECT_THROW(pool.placeModel(9, tweaked, 1, 1),
                 std::runtime_error);
    // The identical matrix still shares cleanly.
    const ModelRef again =
        pool.placeModel(9, randomMatrix(8, 8, 660), 1, 1);
    EXPECT_EQ(pool.modelChip(again), 0u);
}

TEST(ChipPool, SubmitRoutesToOwningChip)
{
    ChipPool pool(poolConfig(2, 2, PlacementPolicy::LeastLoaded));
    const MatrixI m_a = randomMatrix(8, 8, 650);
    const MatrixI m_b = randomMatrix(8, 8, 651);
    const ModelRef a = pool.placeModel(0, m_a, 1, 1);
    const ModelRef b = pool.placeModel(0, m_b, 1, 1);
    ASSERT_NE(pool.modelChip(a), pool.modelChip(b));

    const std::vector<i64> x(8, 1);
    const auto future = pool.submit(a, x, 1);
    EXPECT_EQ(pool.queueDepth(pool.modelChip(a)), 1u);
    EXPECT_EQ(pool.queueDepth(pool.modelChip(b)), 0u);
    const auto result = pool.wait(a, future);
    EXPECT_EQ(result.values, reference(m_a, x));
    // Only the owning chip's clock advanced.
    EXPECT_GT(pool.runtime(pool.modelChip(a)).scheduler().makespan(),
              0u);
    EXPECT_EQ(pool.runtime(pool.modelChip(b)).scheduler().makespan(),
              0u);
    EXPECT_EQ(pool.makespan(), result.done);
}

TEST(ChipPool, ZeroChipsIsFatal)
{
    PoolConfig cfg = poolConfig(1, 1, PlacementPolicy::LeastLoaded);
    cfg.numChips = 0;
    EXPECT_THROW(ChipPool pool(cfg), std::runtime_error);
}

/** Chip large enough for TinyCnn inference models. */
PoolConfig
inferencePoolConfig(std::size_t chips,
                    PlacementPolicy placement,
                    std::size_t hcts_per_chip = 3)
{
    PoolConfig cfg;
    cfg.chip.hct.dce.numPipelines = 2;
    cfg.chip.hct.dce.pipeline.depth = 32;
    cfg.chip.hct.dce.pipeline.width = 32;
    cfg.chip.hct.dce.pipeline.numRegs = 8;
    cfg.chip.hct.ace.numArrays = 16;
    cfg.chip.hct.ace.arrayRows = 64;
    cfg.chip.hct.ace.arrayCols = 32;
    cfg.chip.numHcts = hcts_per_chip;
    cfg.numChips = chips;
    cfg.placement = placement;
    return cfg;
}

TEST(ChipPool, InferenceModelRunsWholeForward)
{
    ChipPool pool(
        inferencePoolConfig(1, PlacementPolicy::LeastLoaded));
    cnn::TinyCnn net(5);
    const ModelRef model = pool.placeCnnInference(0, cnn::TinyCnn(5));
    EXPECT_TRUE(pool.isInference(model));
    EXPECT_EQ(pool.modelRows(model), net.inputSize());

    const std::vector<i64> input(net.inputSize(), 3);
    const InferenceOutcome outcome = pool.runInference(model, input);
    EXPECT_EQ(outcome.values,
              net.infer(net.inputFromFlat(input)));
    EXPECT_EQ(outcome.mvms, 81u);
    EXPECT_GT(outcome.done, outcome.start);
}

TEST(ChipPool, InferenceAffinitySharesNetworks)
{
    // Two tenants with one model key share the whole network's
    // placements (and therefore its pipelined tiles); a third key
    // places a fresh copy.
    ChipPool pool(inferencePoolConfig(
        2, PlacementPolicy::MatrixAffinity));
    const ModelRef a = pool.placeCnnInference(77, cnn::TinyCnn(5));
    const ModelRef b = pool.placeCnnInference(77, cnn::TinyCnn(5));
    EXPECT_EQ(a, b);
    const ModelRef c = pool.placeCnnInference(78, cnn::TinyCnn(6));
    EXPECT_NE(a, c);
    // A reused key with different weights is a configuration error.
    EXPECT_THROW((void)pool.placeCnnInference(77, cnn::TinyCnn(9)),
                 std::runtime_error);
}

TEST(ChipPool, SingleMvmCallsOnInferenceModelsAreFatal)
{
    ChipPool pool(
        inferencePoolConfig(1, PlacementPolicy::LeastLoaded));
    const ModelRef model = pool.placeCnnInference(0, cnn::TinyCnn(5));
    EXPECT_THROW((void)pool.submit(model, std::vector<i64>(64, 0), 8),
                 std::runtime_error);
    EXPECT_THROW((void)pool.modelPlan(model), std::runtime_error);
}

} // namespace
} // namespace serve
} // namespace darth
