/**
 * @file
 * Tests for the multi-chip serving pool: placement sharding policies,
 * affinity sharing, capacity exhaustion, request routing, and
 * heterogeneous pools (per-slot ChipSpecs with cost-aware
 * placement).
 */

#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "common/Random.h"
#include "model/Params.h"
#include "serve/Admission.h"
#include "serve/ChipConfig.h"
#include "serve/ChipPool.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

runtime::ChipConfig
smallChip(std::size_t num_hcts = 4)
{
    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

PoolConfig
poolConfig(std::size_t chips, std::size_t hcts_per_chip,
           PlacementPolicy policy)
{
    PoolConfig cfg;
    cfg.chip = smallChip(hcts_per_chip);
    cfg.numChips = chips;
    cfg.placement = policy;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(i64{0}, i64{1});
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

TEST(ChipPool, RoundRobinSpreadsPlacements)
{
    ChipPool pool(poolConfig(4, 2, PlacementPolicy::RoundRobin));
    for (std::size_t i = 0; i < 4; ++i) {
        const ModelRef m =
            pool.placeModel(0, randomMatrix(8, 8, 600 + i), 1, 1);
        EXPECT_EQ(pool.modelChip(m), i);
    }
    // Second lap wraps back to chip 0.
    const ModelRef again =
        pool.placeModel(0, randomMatrix(8, 8, 610), 1, 1);
    EXPECT_EQ(pool.modelChip(again), 0u);
}

TEST(ChipPool, RoundRobinSkipsFullChips)
{
    // One tile per chip: a full chip cannot take the next placement,
    // the rotation walks past it.
    ChipPool pool(poolConfig(3, 1, PlacementPolicy::RoundRobin));
    const ModelRef a =
        pool.placeModel(0, randomMatrix(8, 8, 620), 1, 1);
    const ModelRef b =
        pool.placeModel(0, randomMatrix(8, 8, 621), 1, 1);
    const ModelRef c =
        pool.placeModel(0, randomMatrix(8, 8, 622), 1, 1);
    EXPECT_EQ(pool.modelChip(a), 0u);
    EXPECT_EQ(pool.modelChip(b), 1u);
    EXPECT_EQ(pool.modelChip(c), 2u);
    EXPECT_THROW(pool.placeModel(0, randomMatrix(8, 8, 623), 1, 1),
                 std::runtime_error);
}

TEST(ChipPool, LeastLoadedPicksEmptiestChip)
{
    ChipPool pool(poolConfig(3, 2, PlacementPolicy::LeastLoaded));
    // All chips empty: ties break to the lowest index.
    const ModelRef a =
        pool.placeModel(0, randomMatrix(8, 8, 630), 1, 1);
    EXPECT_EQ(pool.modelChip(a), 0u);
    // Chip 0 now has fewer free tiles than chips 1 and 2.
    const ModelRef b =
        pool.placeModel(0, randomMatrix(8, 8, 631), 1, 1);
    EXPECT_EQ(pool.modelChip(b), 1u);
    const ModelRef c =
        pool.placeModel(0, randomMatrix(8, 8, 632), 1, 1);
    EXPECT_EQ(pool.modelChip(c), 2u);
    // Back to even load: lowest index again.
    const ModelRef d =
        pool.placeModel(0, randomMatrix(8, 8, 633), 1, 1);
    EXPECT_EQ(pool.modelChip(d), 0u);
}

TEST(ChipPool, MatrixAffinitySharesPlacements)
{
    ChipPool pool(poolConfig(2, 2, PlacementPolicy::MatrixAffinity));
    const MatrixI m = randomMatrix(8, 8, 640);
    const ModelRef first = pool.placeModel(7, m, 1, 1);
    const std::size_t free_after_first =
        pool.freeHcts(pool.modelChip(first));
    // Same key: the existing placement is returned, no tiles consumed.
    const ModelRef second = pool.placeModel(7, m, 1, 1);
    EXPECT_EQ(first, second);
    EXPECT_EQ(pool.freeHcts(pool.modelChip(first)), free_after_first);
    // A different key places fresh (on the emptier chip).
    const ModelRef other =
        pool.placeModel(8, randomMatrix(8, 8, 641), 1, 1);
    EXPECT_NE(other, first);
    EXPECT_NE(pool.modelChip(other), pool.modelChip(first));
    // Key 0 opts out of sharing even under MatrixAffinity.
    const ModelRef anon_a = pool.placeModel(0, m, 1, 1);
    const ModelRef anon_b = pool.placeModel(0, m, 1, 1);
    EXPECT_NE(anon_a, anon_b);
}

TEST(ChipPool, AffinityKeyReuseWithDifferentWeightsIsFatal)
{
    // Returning the existing placement for a key while silently
    // ignoring different offered weights would make every later MVM
    // wrong; it must fail loudly instead.
    ChipPool pool(poolConfig(1, 2, PlacementPolicy::MatrixAffinity));
    (void)pool.placeModel(9, randomMatrix(8, 8, 660), 1, 1);
    EXPECT_THROW(pool.placeModel(9, randomMatrix(8, 8, 661), 1, 1),
                 std::runtime_error);
    // Same shape, one differing element: still fatal.
    MatrixI tweaked = randomMatrix(8, 8, 660);
    tweaked(3, 3) ^= 1;
    EXPECT_THROW(pool.placeModel(9, tweaked, 1, 1),
                 std::runtime_error);
    // The identical matrix still shares cleanly.
    const ModelRef again =
        pool.placeModel(9, randomMatrix(8, 8, 660), 1, 1);
    EXPECT_EQ(pool.modelChip(again), 0u);
}

TEST(ChipPool, SubmitRoutesToOwningChip)
{
    ChipPool pool(poolConfig(2, 2, PlacementPolicy::LeastLoaded));
    const MatrixI m_a = randomMatrix(8, 8, 650);
    const MatrixI m_b = randomMatrix(8, 8, 651);
    const ModelRef a = pool.placeModel(0, m_a, 1, 1);
    const ModelRef b = pool.placeModel(0, m_b, 1, 1);
    ASSERT_NE(pool.modelChip(a), pool.modelChip(b));

    const std::vector<i64> x(8, 1);
    const auto future = pool.submit(a, x, 1);
    EXPECT_EQ(pool.queueDepth(pool.modelChip(a)), 1u);
    EXPECT_EQ(pool.queueDepth(pool.modelChip(b)), 0u);
    const auto result = pool.wait(a, future);
    EXPECT_EQ(result.values, reference(m_a, x));
    // Only the owning chip's clock advanced.
    EXPECT_GT(pool.runtime(pool.modelChip(a)).scheduler().makespan(),
              0u);
    EXPECT_EQ(pool.runtime(pool.modelChip(b)).scheduler().makespan(),
              0u);
    EXPECT_EQ(pool.makespanNs(), result.done);
}

TEST(ChipPool, ZeroChipsIsFatal)
{
    PoolConfig cfg = poolConfig(1, 1, PlacementPolicy::LeastLoaded);
    cfg.numChips = 0;
    EXPECT_THROW(ChipPool pool(cfg), std::runtime_error);
}

/** Chip large enough for TinyCnn inference models. */
PoolConfig
inferencePoolConfig(std::size_t chips,
                    PlacementPolicy placement,
                    std::size_t hcts_per_chip = 3)
{
    PoolConfig cfg;
    cfg.chip.hct.dce.numPipelines = 2;
    cfg.chip.hct.dce.pipeline.depth = 32;
    cfg.chip.hct.dce.pipeline.width = 32;
    cfg.chip.hct.dce.pipeline.numRegs = 8;
    cfg.chip.hct.ace.numArrays = 16;
    cfg.chip.hct.ace.arrayRows = 64;
    cfg.chip.hct.ace.arrayCols = 32;
    cfg.chip.numHcts = hcts_per_chip;
    cfg.numChips = chips;
    cfg.placement = placement;
    return cfg;
}

/** Drive a staged inference to completion at one admission cycle. */
InferenceOutcome
runWholeInference(ChipPool &pool, ModelRef model,
                  const std::vector<i64> &input, Cycle at = 0)
{
    auto run = pool.beginInference(model, input, at);
    return pool.runToCompletion(*run, at);
}

TEST(ChipPool, InferenceModelRunsWholeForward)
{
    ChipPool pool(
        inferencePoolConfig(1, PlacementPolicy::LeastLoaded));
    cnn::TinyCnn net(5);
    const ModelRef model = pool.placeCnnInference(0, cnn::TinyCnn(5));
    EXPECT_TRUE(pool.isInference(model));
    EXPECT_EQ(pool.modelRows(model), net.inputSize());

    const std::vector<i64> input(net.inputSize(), 3);
    const InferenceOutcome outcome =
        runWholeInference(pool, model, input);
    EXPECT_EQ(outcome.values,
              net.infer(net.inputFromFlat(input)));
    EXPECT_EQ(outcome.mvms, 81u);
    EXPECT_GT(outcome.done, outcome.start);
}

TEST(ChipPool, InferenceAffinitySharesNetworks)
{
    // Two tenants with one model key share the whole network's
    // placements (and therefore its pipelined tiles); a third key
    // places a fresh copy.
    ChipPool pool(inferencePoolConfig(
        2, PlacementPolicy::MatrixAffinity));
    const ModelRef a = pool.placeCnnInference(77, cnn::TinyCnn(5));
    const ModelRef b = pool.placeCnnInference(77, cnn::TinyCnn(5));
    EXPECT_EQ(a, b);
    const ModelRef c = pool.placeCnnInference(78, cnn::TinyCnn(6));
    EXPECT_NE(a, c);
    // A reused key with different weights is a configuration error.
    EXPECT_THROW((void)pool.placeCnnInference(77, cnn::TinyCnn(9)),
                 std::runtime_error);
}

TEST(ChipPool, SingleMvmCallsOnInferenceModelsAreFatal)
{
    ChipPool pool(
        inferencePoolConfig(1, PlacementPolicy::LeastLoaded));
    const ModelRef model = pool.placeCnnInference(0, cnn::TinyCnn(5));
    EXPECT_THROW((void)pool.submit(model, std::vector<i64>(64, 0), 8),
                 std::runtime_error);
    EXPECT_THROW((void)pool.modelPlan(model), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Heterogeneous pools.
// ---------------------------------------------------------------------------

/** One SAR slot and one ramp slot at the iso-area design points. */
PoolConfig
mixedPoolConfig(PlacementPolicy policy, std::size_t sar_hcts = 2)
{
    PoolConfig cfg;
    cfg.chips = {heteroChipSpec(analog::AdcKind::Sar, sar_hcts),
                 heteroChipSpec(analog::AdcKind::Ramp, sar_hcts)};
    cfg.placement = policy;
    return cfg;
}

TEST(ChipPool, IsoAreaRampChipCarriesFewerTiles)
{
    // The ramp ADC is bigger (Table 3), so the same slot area packs
    // fewer ramp tiles — the scaled version of the full die's
    // SAR-vs-ramp iso-area tile counts.
    EXPECT_EQ(model::isoAreaScaledHcts(analog::AdcKind::Sar, 8), 8u);
    EXPECT_LT(model::isoAreaScaledHcts(analog::AdcKind::Ramp, 8), 8u);
    EXPECT_GE(model::isoAreaScaledHcts(analog::AdcKind::Ramp, 1), 1u);

    const ChipSpec sar = heteroChipSpec(analog::AdcKind::Sar, 8);
    const ChipSpec ramp = heteroChipSpec(analog::AdcKind::Ramp, 8);
    EXPECT_EQ(sar.chip.numHcts, 8u);
    EXPECT_LT(ramp.chip.numHcts, sar.chip.numHcts);
    EXPECT_EQ(sar.adcKind(), analog::AdcKind::Sar);
    EXPECT_EQ(ramp.adcKind(), analog::AdcKind::Ramp);
    // Full-die modeled counts ride along for throughput scaling.
    EXPECT_GT(sar.chip.modeledHcts, ramp.chip.modeledHcts);

    ChipPool pool(mixedPoolConfig(PlacementPolicy::CostAware, 8));
    EXPECT_TRUE(pool.heterogeneous());
    EXPECT_EQ(pool.spec(0).name, "sar");
    EXPECT_EQ(pool.spec(1).name, "ramp");
    EXPECT_EQ(pool.chip(0).numHcts(), 8u);
    EXPECT_EQ(pool.chip(1).numHcts(), ramp.chip.numHcts);
}

TEST(ChipPool, CostAwarePrefersCheaperChipPerShape)
{
    ChipPool pool(mixedPoolConfig(PlacementPolicy::CostAware, 4));
    TrafficGen gen(11);

    // Wide 1-bit GF(2) bank: one ramp sweep (range-terminated)
    // converts all 256 columns while the two SAR converters
    // multiplex them — ramp is the cheaper chip, and the policy
    // must pick it even though the SAR chip is less loaded.
    const double wide_sar = pool.placementScore(0, 32, 256, 1, 1, 1);
    const double wide_ramp = pool.placementScore(1, 32, 256, 1, 1, 1);
    ASSERT_LT(wide_ramp, wide_sar);
    const ModelRef wide = pool.placeModel(
        0, gen.weights(WorkloadKind::GfWide, 1), 1, 1, 1);
    EXPECT_EQ(pool.modelChip(wide), 1u);

    // Narrow 8-bit CNN layer: 16 columns convert in 8 SAR cycles
    // but cost a near-full reference sweep per partial product on
    // the ramp chip — SAR must win.
    const double cnn_sar = pool.placementScore(0, 72, 16, 8, 2, 4);
    const double cnn_ramp = pool.placementScore(1, 72, 16, 8, 2, 4);
    ASSERT_LT(cnn_sar, cnn_ramp);
    const ModelRef narrow = pool.placeModel(
        0, gen.weights(WorkloadKind::Cnn, 1), 8, 2, 4);
    EXPECT_EQ(pool.modelChip(narrow), 0u);

    // The 32x32 AES MixColumns matrix and the 64x64 projection are
    // both SAR-favoring at these design points.
    const ModelRef aes = pool.placeModel(
        0, gen.weights(WorkloadKind::Aes, 1), 1, 1, 1);
    EXPECT_EQ(pool.modelChip(aes), 0u);
    const ModelRef llm = pool.placeModel(
        0, gen.weights(WorkloadKind::Llm, 1), 8, 2, 4);
    EXPECT_EQ(pool.modelChip(llm), 0u);
}

TEST(ChipPool, CostAwareTiesFallBackToLeastLoaded)
{
    // Two identical SAR slots: every score ties, so placement must
    // spread by the least-loaded order instead of piling on chip 0.
    PoolConfig cfg;
    cfg.chips = {heteroChipSpec(analog::AdcKind::Sar, 2),
                 heteroChipSpec(analog::AdcKind::Sar, 2)};
    cfg.placement = PlacementPolicy::CostAware;
    ChipPool pool(cfg);
    EXPECT_FALSE(pool.heterogeneous());
    TrafficGen gen(12);
    const ModelRef a = pool.placeModel(
        0, gen.weights(WorkloadKind::Micro, 1), 1, 1, 1);
    const ModelRef b = pool.placeModel(
        0, gen.weights(WorkloadKind::Micro, 2), 1, 1, 1);
    EXPECT_EQ(pool.modelChip(a), 0u);
    EXPECT_EQ(pool.modelChip(b), 1u);
}

TEST(ChipPool, CostAwareHonoursAffinitySharing)
{
    ChipPool pool(mixedPoolConfig(PlacementPolicy::CostAware));
    TrafficGen gen(13);
    const MatrixI m = gen.weights(WorkloadKind::GfWide, 7);
    const ModelRef first = pool.placeModel(7, m, 1, 1, 1);
    const std::size_t free_after =
        pool.freeHcts(pool.modelChip(first));
    // Same key: shared placement, no new tiles, same chip.
    const ModelRef second = pool.placeModel(7, m, 1, 1, 1);
    EXPECT_EQ(first, second);
    EXPECT_EQ(pool.freeHcts(pool.modelChip(first)), free_after);
    // A reused key with different weights is fatal, as under
    // MatrixAffinity.
    EXPECT_THROW(
        (void)pool.placeModel(7, gen.weights(WorkloadKind::GfWide, 8),
                              1, 1, 1),
        std::runtime_error);
}

TEST(ChipPool, StagedInferenceChargesSumToNominal)
{
    // Per-stage WFQ charges are the run's per-step oracle costs
    // normalized so a stage-granular request is charged exactly what
    // whole-inference admission would charge in total.
    ChipPool pool(inferencePoolConfig(1, PlacementPolicy::LeastLoaded,
                                      /*hcts_per_chip=*/9));
    TrafficGen gen(31);
    const ModelRef cnn_model =
        pool.placeCnnInference(0, gen.cnnInferNet(1));
    const ModelRef llm_model =
        pool.placeLlmInference(0, gen.llmInferNet(2));

    const std::vector<i64> cnn_input(pool.modelRows(cnn_model), 1);
    auto cnn_run = pool.beginInference(cnn_model, cnn_input, 0);
    EXPECT_EQ(cnn_run->stageCount(), 3u);   // conv1, conv2, fc
    u64 total = 0;
    for (const u64 charge : cnn_run->stageCharges) {
        EXPECT_GT(charge, 0u);
        total += charge;
    }
    EXPECT_EQ(total, pool.nominalServicePs(cnn_model, 8));
    // At the default 1 GHz the picosecond charges are the cycle
    // nominal scaled by the 1000 ps period, exactly.
    EXPECT_EQ(total, 1000 * pool.nominalServiceCycles(cnn_model, 8));

    const std::vector<i64> llm_input(pool.modelRows(llm_model), 1);
    auto llm_run = pool.beginInference(llm_model, llm_input, 0);
    EXPECT_EQ(llm_run->stageCount(), 4u);   // qkv, attn-wo, ffn1/2
    total = 0;
    for (const u64 charge : llm_run->stageCharges) {
        EXPECT_GT(charge, 0u);
        total += charge;
    }
    EXPECT_EQ(total, pool.nominalServicePs(llm_model, 12));

    // beginInference submits nothing: the chip scheduler is idle
    // until the run is advanced.
    EXPECT_EQ(pool.queueDepth(0), 0u);
    EXPECT_EQ(cnn_run->submittedStages(), 0u);

    // Driving both runs to completion yields the reference outputs.
    while (!cnn_run->finished())
        pool.advanceInference(*cnn_run, 0);
    const InferenceOutcome outcome = pool.finishInference(*cnn_run);
    const cnn::TinyCnn ref = gen.cnnInferNet(1);
    EXPECT_EQ(outcome.values, ref.infer(ref.inputFromFlat(cnn_input)));
}

TEST(ChipPool, CostAwareBacklogPrefersSlowerIdleChip)
{
    // Chip 0 is twice as fast (2 GHz) on identical silicon, so an
    // empty pool places everything there; once its scheduler sits on
    // enough backlog, the slower-but-idle chip 1 must win.
    PoolConfig cfg;
    cfg.chips = {
        heteroChipSpec(analog::AdcKind::Sar, 2, /*clock_ghz=*/2.0),
        heteroChipSpec(analog::AdcKind::Sar, 2, /*clock_ghz=*/1.0)};
    cfg.placement = PlacementPolicy::CostAware;
    cfg.backlogWindowNs = 200;
    ChipPool pool(cfg);
    TrafficGen gen(32);

    // Idle: the fast chip is strictly cheaper for the same shape.
    EXPECT_LT(pool.placementScore(0, 8, 8, 1, 1, 1),
              pool.placementScore(1, 8, 8, 1, 1, 1));
    const ModelRef warm = pool.placeModel(
        0, gen.weights(WorkloadKind::Micro, 1), 1, 1, 1);
    EXPECT_EQ(pool.modelChip(warm), 0u);

    // Pile unexecuted work onto the fast chip's scheduler.
    EXPECT_EQ(pool.backlogCycles(0), 0u);
    for (int i = 0; i < 8; ++i)
        (void)pool.submit(warm, std::vector<i64>(8, 1), 1);
    ASSERT_GT(pool.backlogCycles(0), 2 * cfg.backlogWindowNs);
    EXPECT_EQ(pool.backlogCycles(1), 0u);

    // score0 = (cost/2)(1 + backlog/window) now exceeds score1 =
    // cost: queue pressure outweighs the clock advantage.
    EXPECT_GT(pool.placementScore(0, 8, 8, 1, 1, 1),
              pool.placementScore(1, 8, 8, 1, 1, 1));
    const ModelRef placed = pool.placeModel(
        0, gen.weights(WorkloadKind::Micro, 2), 1, 1, 1);
    EXPECT_EQ(pool.modelChip(placed), 1u);
}

TEST(ChipPool, CostAwareBacklogMakesAssignmentOrderInsensitive)
{
    // Two identical chips, backlog on chip 0 only. Score-ties under
    // the old cost-only rule broke by least-loaded state, which
    // placements mutate — so which tenant landed where depended on
    // arrival order. With the backlog term the scores are strict
    // and static during placement: either arrival order gives each
    // tenant the same chip.
    auto place_pair = [&](bool swapped) {
        PoolConfig cfg;
        cfg.chips = {heteroChipSpec(analog::AdcKind::Sar, 3),
                     heteroChipSpec(analog::AdcKind::Sar, 3)};
        cfg.placement = PlacementPolicy::CostAware;
        cfg.backlogWindowNs = 200;
        ChipPool pool(cfg);
        TrafficGen gen(33);
        const ModelRef warm = pool.placeModel(
            0, gen.weights(WorkloadKind::Micro, 1), 1, 1, 1);
        EXPECT_EQ(pool.modelChip(warm), 0u);
        for (int i = 0; i < 8; ++i)
            (void)pool.submit(warm, std::vector<i64>(8, 1), 1);

        const MatrixI a = gen.weights(WorkloadKind::Micro, 10);
        const MatrixI b = gen.weights(WorkloadKind::Micro, 11);
        ModelRef first =
            pool.placeModel(0, swapped ? b : a, 1, 1, 1);
        ModelRef second =
            pool.placeModel(0, swapped ? a : b, 1, 1, 1);
        if (swapped)
            std::swap(first, second);
        return std::make_pair(pool.modelChip(first),
                              pool.modelChip(second));
    };

    const auto forward = place_pair(false);
    const auto swapped = place_pair(true);
    EXPECT_EQ(forward, swapped);
    // Both avoided the backlogged chip.
    EXPECT_EQ(forward.first, 1u);
    EXPECT_EQ(forward.second, 1u);
}

TEST(ChipPool, MixedPoolOutputsBitIdenticalToHomogeneous)
{
    // One trace through a SAR-only pool and a mixed SAR+ramp pool:
    // the ADC kind (and chip assignment) may move every cycle stamp,
    // but never a single output value.
    std::vector<TenantSpec> specs(4);
    specs[0].name = "gf";
    specs[0].kind = WorkloadKind::GfWide;
    specs[0].ratePerKns = 4.0;
    specs[1].name = "aes";
    specs[1].kind = WorkloadKind::Aes;
    specs[1].ratePerKns = 4.0;
    specs[2].name = "cnn";
    specs[2].kind = WorkloadKind::Cnn;
    specs[2].ratePerKns = 1.0;
    specs[3].name = "llm";
    specs[3].kind = WorkloadKind::Llm;
    specs[3].ratePerKns = 1.0;

    auto run = [&](bool mixed) {
        TrafficGen gen(909);
        PoolConfig cfg;
        cfg.chips = {
            heteroChipSpec(analog::AdcKind::Sar, 4),
            heteroChipSpec(mixed ? analog::AdcKind::Ramp
                                 : analog::AdcKind::Sar,
                           4)};
        cfg.placement = PlacementPolicy::CostAware;
        ChipPool pool(cfg);
        auto tenants = buildTenants(pool, gen, specs);
        AdmissionConfig acfg;
        acfg.queueDepth = 2;
        acfg.overflow = OverflowPolicy::Block;
        AdmissionController ac(pool, tenants, acfg);
        return ac.run(gen.trace(specs, 8000));
    };

    const ServeReport homog = run(false);
    const ServeReport mixed = run(true);
    ASSERT_GT(homog.completed, 0u);
    EXPECT_EQ(homog.completed, mixed.completed);
    EXPECT_EQ(homog.outputChecksum, mixed.outputChecksum);
}

} // namespace
} // namespace serve
} // namespace darth
