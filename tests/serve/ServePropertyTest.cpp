/**
 * @file
 * Randomized serve-invariant harness: each seed draws a full serving
 * configuration — pool size and silicon mix, frequency bins,
 * placement policy, QoS/overflow/granularity, queue depths, tenant
 * mix, optional churn + fleet lifecycle — runs it, and asserts the
 * invariants the serving layer promises regardless of configuration:
 *
 *  1. accounting: every trace request is completed or rejected,
 *     admitted-set == completed-set, report counters match the
 *     journal;
 *  2. replay: the journal alone reconstructs the run bit-exactly;
 *  3. threads: 1 vs 4 host threads produce bit-identical journals
 *     and output checksums;
 *  4. pool invariance: under OverflowPolicy::Block the output
 *     checksum is invariant across pool size and placement policy
 *     (outputs depend only on tenant weights and inputs, never on
 *     where or when they ran);
 *  5. WFQ conservation: per request, the stage charges journaled by
 *     Admit sum exactly to the whole-graph nominal service (integer
 *     picoseconds — no drift).
 *
 * Invariant 4 is deliberately gated on Block: Reject mode drops
 * requests by queue pressure, which legitimately differs across
 * pools, so only Block runs are comparable cross-pool.
 *
 * Tier-1 runs 24 fixed seeds. Setting DARTH_SERVE_STRESS in the
 * environment (the ASan CI leg does) stretches every trace 8x for a
 * deeper soak with the same seeds.
 */

#include <cstdlib>
#include <map>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "journal/Journal.h"
#include "journal/Replayer.h"
#include "serve/Admission.h"
#include "serve/ChipPool.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

bool
stressMode()
{
    const char *v = std::getenv("DARTH_SERVE_STRESS");
    return v != nullptr && *v != '\0';
}

/** Draw a full serve-run setup from one seed. Every field below is
 *  either fixed (the capacity anchor in slot 0) or drawn from the
 *  seed's generator, so a failing seed reproduces exactly. */
journal::ServeRunSetup
drawSetup(u64 seed)
{
    std::mt19937_64 rng(0x5EEDF00DULL + seed * 1000003ULL);
    auto draw = [&rng](u64 lo, u64 hi) { // inclusive
        return lo + rng() % (hi - lo + 1);
    };

    journal::ServeRunSetup setup;
    setup.uniformPool = false;

    // Pool: 1-8 chips. Slot 0 is always the big uniform chip so
    // every workload kind fits somewhere; the rest mix silicon
    // (uniform / SAR / ramp geometries) and frequency bins (1 GHz /
    // 2 GHz).
    const std::size_t chips = draw(1, 8);
    setup.slots.clear();
    setup.slots.push_back({journal::SlotKind::Uniform, 12, 1.0});
    for (std::size_t c = 1; c < chips; ++c) {
        journal::PoolSlotSetup slot;
        const u64 pick = draw(0, 2);
        if (pick == 0) {
            slot.kind = journal::SlotKind::Uniform;
            slot.hcts = draw(6, 10);
        } else {
            slot.kind = pick == 1 ? journal::SlotKind::Sar
                                  : journal::SlotKind::Ramp;
            slot.hcts = 8;
        }
        slot.clockGHz = draw(0, 1) == 0 ? 1.0 : 2.0;
        setup.slots.push_back(slot);
    }
    const PlacementPolicy policies[] = {
        PlacementPolicy::RoundRobin, PlacementPolicy::LeastLoaded,
        PlacementPolicy::MatrixAffinity, PlacementPolicy::CostAware};
    setup.placement = policies[draw(0, 3)];
    setup.poolSeed = seed * 31 + 7;

    setup.admission.queueDepth = draw(1, 4);
    const QosPolicy qos[] = {QosPolicy::Fifo, QosPolicy::RoundRobin,
                             QosPolicy::WeightedFair};
    setup.admission.qos = qos[draw(0, 2)];
    setup.admission.overflow = draw(0, 2) == 0
                                   ? OverflowPolicy::Reject
                                   : OverflowPolicy::Block;
    setup.admission.granularity = draw(0, 1) == 0
                                      ? Granularity::Inference
                                      : Granularity::Stage;

    setup.horizon = 1200 * (stressMode() ? 8 : 1);
    setup.trafficSeed = seed * 7 + 1;

    // Tenants: 2-4, mostly single-MVM micro tenants, with at most
    // one CNN and one LLM inference tenant at lower rates (staged
    // graphs are much heavier than single MVMs). Tenant 0 is always
    // a steady micro tenant so no seed draws a vacuous trace.
    const std::size_t tenants = draw(2, 4);
    bool used_cnn = false;
    bool used_llm = false;
    for (std::size_t t = 0; t < tenants; ++t) {
        TenantSpec spec;
        // Built in two steps: GCC 12's -Wrestrict false-positives on
        // operator+(const char*, string&&) under -O3.
        spec.name = "t";
        spec.name += std::to_string(t);
        spec.weight = static_cast<double>(draw(1, 4));
        const u64 pick = t == 0 ? 5 : draw(0, 5);
        if (pick == 0 && !used_cnn) {
            used_cnn = true;
            spec.kind = WorkloadKind::CnnInfer;
            spec.ratePerKns = 0.4;
        } else if (pick == 1 && !used_llm) {
            used_llm = true;
            spec.kind = WorkloadKind::LlmInfer;
            spec.ratePerKns = 0.3;
        } else {
            spec.kind = WorkloadKind::Micro;
            spec.ratePerKns = 1.0 + 0.5 * static_cast<double>(draw(0, 4));
        }
        setup.tenants.push_back(spec);
    }

    // Odd seeds exercise the fleet lifecycle: one tenant churns
    // (arrives late, departs early) and the run is driven through a
    // FleetController with migration + autoscaling live.
    if (seed % 2 == 1) {
        setup.fleet = true;
        setup.fleetCfg.checkIntervalNs = 400;
        setup.fleetCfg.backlogHighNs = 2000;
        setup.fleetCfg.backlogLowNs = 100;
        setup.fleetCfg.migrateHighNs = 1500;
        TenantSpec &churner = setup.tenants[draw(1, tenants - 1)];
        churner.arriveNs = setup.horizon / 4;
        churner.departNs = (setup.horizon * 3) / 4;
    }
    return setup;
}

class ServeProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ServeProperty, InvariantsHold)
{
    const u64 seed = static_cast<u64>(GetParam());
    const journal::ServeRunSetup setup = drawSetup(seed);
    const journal::ServeRunRecord rec = journal::recordServeRun(setup);
    ASSERT_FALSE(rec.trace.empty()) << "seed " << seed << " is vacuous";

    // --- 1. Accounting: the report and the journal agree, and no
    // begun inference is ever lost.
    EXPECT_EQ(rec.report.completed + rec.report.rejected,
              rec.trace.size())
        << "seed " << seed;
    std::map<u64, u64> charge_sum;
    std::map<u64, u64> nominal;
    std::set<u64> admitted;
    std::set<u64> completed;
    std::set<u64> rejected;
    for (const auto &e : rec.journal.events()) {
        switch (e.kind) {
        case journal::EventKind::Admit:
            ASSERT_EQ(e.values.size(), 2u);
            charge_sum[e.a] += e.values[0];
            nominal[e.a] = e.values[1];
            admitted.insert(e.a);
            break;
        case journal::EventKind::Complete:
            completed.insert(e.a);
            break;
        case journal::EventKind::Backpressure:
            if (e.d == 1)
                rejected.insert(e.a);
            break;
        default:
            break;
        }
    }
    EXPECT_EQ(admitted, completed)
        << "seed " << seed << ": a begun inference was lost";
    EXPECT_EQ(completed.size(), rec.report.completed) << "seed " << seed;
    EXPECT_EQ(rejected.size(), rec.report.rejected) << "seed " << seed;

    // --- 5. WFQ conservation: per request the journaled charges sum
    // exactly (integer picoseconds) to the whole-graph nominal.
    for (const auto &[req, sum] : charge_sum)
        EXPECT_EQ(sum, nominal[req])
            << "seed " << seed << " request " << req
            << ": stage charges drifted from nominal";

    // --- 2. Replay: the journal alone reconstructs the run
    // bit-exactly.
    const journal::Replayer replayer(rec.journal);
    const journal::Replayer::Result res = replayer.replay();
    EXPECT_TRUE(res.identical)
        << "seed " << seed << ": replay diverged at event "
        << res.firstMismatch << ": " << res.detail;

    // --- 3. Threads: 4 host threads, same trace, bit-identical
    // journal and outputs.
    journal::ServeRunSetup threaded = setup;
    threaded.admission.threads = 4;
    const journal::ServeRunRecord rec4 =
        journal::recordServeRun(threaded, rec.trace);
    EXPECT_EQ(rec4.journal.chainChecksum(), rec.journal.chainChecksum())
        << "seed " << seed << ": journals diverge across thread counts";
    EXPECT_EQ(rec4.report.outputChecksum, rec.report.outputChecksum)
        << "seed " << seed;

    // --- 4. Pool invariance (Block only): the same trace on a
    // single-chip pool under a different placement policy yields
    // bit-identical outputs.
    if (setup.admission.overflow == OverflowPolicy::Block) {
        journal::ServeRunSetup alt = setup;
        alt.uniformPool = true;
        alt.slots = {{journal::SlotKind::Uniform, 12, 1.0}};
        alt.placement = setup.placement == PlacementPolicy::RoundRobin
                            ? PlacementPolicy::LeastLoaded
                            : PlacementPolicy::RoundRobin;
        const journal::ServeRunRecord alt_rec =
            journal::recordServeRun(alt, rec.trace);
        EXPECT_EQ(alt_rec.report.outputChecksum,
                  rec.report.outputChecksum)
            << "seed " << seed
            << ": outputs depend on pool shape or policy";
        EXPECT_EQ(alt_rec.report.completed, rec.report.completed)
            << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeProperty,
                         ::testing::Range(0, 24));

} // namespace
} // namespace serve
} // namespace darth
