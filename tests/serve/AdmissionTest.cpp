/**
 * @file
 * Tests for QoS-aware admission: backpressure (block/reject) against
 * the bounded per-chip submission window, FIFO ordering, weighted-
 * fair convergence and round-robin starvation-freedom under
 * saturation, and bit-identity of a pooled run across pool sizes.
 */

#include <cstddef>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "serve/Admission.h"
#include "serve/ChipConfig.h"
#include "serve/ChipPool.h"
#include "serve/TrafficGen.h"

namespace darth
{
namespace serve
{
namespace
{

runtime::ChipConfig
smallChip(std::size_t num_hcts = 4)
{
    runtime::ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

PoolConfig
poolConfig(std::size_t chips, std::size_t hcts_per_chip)
{
    PoolConfig cfg;
    cfg.chip = smallChip(hcts_per_chip);
    cfg.numChips = chips;
    cfg.placement = PlacementPolicy::LeastLoaded;
    return cfg;
}

/** Micro-kind tenant specs with the given weights. */
std::vector<TenantSpec>
microSpecs(const std::vector<double> &weights)
{
    std::vector<TenantSpec> specs;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        TenantSpec spec;
        spec.name = "tenant" + std::to_string(i);
        spec.kind = WorkloadKind::Micro;
        spec.weight = weights[i];
        spec.ratePerKns = 1.0;
        specs.push_back(spec);
    }
    return specs;
}

/** A hand-built request: all Micro inputs are all-ones. */
ServeRequest
microRequest(Cycle arrival, std::size_t tenant)
{
    ServeRequest req;
    req.arrival = arrival;
    req.tenant = tenant;
    req.input.assign(TrafficGen::inputRows(WorkloadKind::Micro), 1);
    return req;
}

/** Saturating trace: every tenant submits one request per period. */
std::vector<ServeRequest>
floodTrace(std::size_t tenants, Cycle horizon, Cycle period = 1)
{
    std::vector<ServeRequest> trace;
    for (Cycle at = 0; at < horizon; at += period)
        for (std::size_t t = 0; t < tenants; ++t)
            trace.push_back(microRequest(at, t));
    return trace;
}

TEST(Admission, RejectDropsWhenWindowFullBlockDoesNot)
{
    TrafficGen gen(42);
    // Five simultaneous arrivals against a window of two.
    std::vector<ServeRequest> burst;
    for (int i = 0; i < 5; ++i)
        burst.push_back(microRequest(0, 0));

    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 2;
    cfg.overflow = OverflowPolicy::Reject;
    {
        ChipPool pool(poolConfig(1, 1));
        auto tenants = buildTenants(pool, gen, microSpecs({1.0}));
        AdmissionController ac(pool, tenants, cfg);
        const ServeReport report = ac.run(burst);
        EXPECT_EQ(report.completed, 2u);
        EXPECT_EQ(report.rejected, 3u);
        EXPECT_EQ(report.tenants[0].rejected, 3u);
    }
    cfg.overflow = OverflowPolicy::Block;
    {
        ChipPool pool(poolConfig(1, 1));
        auto tenants = buildTenants(pool, gen, microSpecs({1.0}));
        AdmissionController ac(pool, tenants, cfg);
        const ServeReport report = ac.run(burst);
        EXPECT_EQ(report.completed, 5u);
        EXPECT_EQ(report.rejected, 0u);
        // Blocked requests wait longer and longer for their slot.
        const auto &queueing = report.tenants[0].queueing;
        ASSERT_EQ(queueing.size(), 5u);
        for (std::size_t i = 1; i < queueing.size(); ++i)
            EXPECT_GE(queueing[i], queueing[i - 1]) << "request " << i;
        EXPECT_GT(queueing.back(), queueing.front());
    }
}

TEST(Admission, FifoAdmitsOldestArrivalFirst)
{
    TrafficGen gen(43);
    ChipPool pool(poolConfig(1, 2));
    auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 1;
    cfg.qos = QosPolicy::Fifo;
    AdmissionController ac(pool, tenants, cfg);

    // Tenant 0 at cycles 0 and 2, tenant 1 at cycle 1. With a window
    // of one, the slot freed by the first request must go to tenant
    // 1 (older arrival), then back to tenant 0.
    std::vector<ServeRequest> trace;
    trace.push_back(microRequest(0, 0));
    trace.push_back(microRequest(1, 1));
    trace.push_back(microRequest(2, 0));
    const ServeReport report = ac.run(trace);
    ASSERT_EQ(report.completed, 3u);
    // Tenant 1 was admitted before tenant 0's second request: its
    // start (arrival + queueing = 1 + q) precedes the other's
    // (2 + q').
    const double t1_start = 1.0 + report.tenants[1].queueing[0];
    const double t0_second_start =
        2.0 + report.tenants[0].queueing[1];
    EXPECT_LT(t1_start, t0_second_start);
}

TEST(Admission, WeightedFairSharesConvergeToWeights)
{
    TrafficGen gen(44);
    ChipPool pool(poolConfig(1, 2));
    auto tenants = buildTenants(pool, gen, microSpecs({3.0, 1.0}));
    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 2;
    cfg.qos = QosPolicy::WeightedFair;
    cfg.overflow = OverflowPolicy::Block;
    AdmissionController ac(pool, tenants, cfg);

    const Cycle horizon = 8000;
    const ServeReport report = ac.run(floodTrace(2, horizon));
    // Count completions inside the saturated window (the end-of-trace
    // drain completes everything eventually and would flatten the
    // shares to the submitted counts).
    const double a = static_cast<double>(
        report.tenants[0].completionsBy(horizon));
    const double b = static_cast<double>(
        report.tenants[1].completionsBy(horizon));
    ASSERT_GT(b, 20.0);
    const double ratio = a / b;
    EXPECT_GT(ratio, 2.4) << "a=" << a << " b=" << b;
    EXPECT_LT(ratio, 3.6) << "a=" << a << " b=" << b;
    // The heavier class also sees the shorter queueing delay.
    EXPECT_LT(report.tenants[0].queueingSummary().p50,
              report.tenants[1].queueingSummary().p50);
}

TEST(Admission, WeightedFairBanksNoCreditWhileIdle)
{
    // Tenant 1 is idle for the first half of the trace, then floods.
    // Without a virtual-time floor its stale (near-zero) charge would
    // let it monopolize the chip until it "caught up" with tenant 0's
    // whole first-half service; with the floor, the second half is
    // shared per the (equal) weights.
    TrafficGen gen(49);
    ChipPool pool(poolConfig(1, 2));
    auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 2;
    cfg.qos = QosPolicy::WeightedFair;
    cfg.overflow = OverflowPolicy::Block;
    AdmissionController ac(pool, tenants, cfg);

    const Cycle half = 6000;
    std::vector<ServeRequest> trace;
    for (Cycle at = 0; at < 2 * half; ++at) {
        trace.push_back(microRequest(at, 0));
        if (at >= half)
            trace.push_back(microRequest(at, 1));
    }
    const ServeReport report = ac.run(trace);
    const double t0_second_half = static_cast<double>(
        report.tenants[0].completionsBy(2 * half) -
        report.tenants[0].completionsBy(half));
    const double t1_second_half = static_cast<double>(
        report.tenants[1].completionsBy(2 * half));
    ASSERT_GT(t1_second_half, 10.0);
    // Equal weights: the second-half shares stay near 1:1 instead of
    // tenant 1 freezing tenant 0 out.
    const double ratio = t0_second_half / t1_second_half;
    EXPECT_GT(ratio, 0.6) << "t0=" << t0_second_half
                          << " t1=" << t1_second_half;
    EXPECT_LT(ratio, 1.67) << "t0=" << t0_second_half
                           << " t1=" << t1_second_half;
}

TEST(Admission, RoundRobinIsStarvationFree)
{
    // Tenant 0 floods; tenant 1 trickles. Under FIFO the trickle
    // waits behind the whole backlog; round-robin alternates, so the
    // trickle's queueing stays near zero.
    TrafficGen gen(45);
    const Cycle horizon = 2000;
    std::vector<ServeRequest> trace;
    for (Cycle at = 0; at < horizon; ++at) {
        trace.push_back(microRequest(at, 0));
        if (at % 100 == 0)
            trace.push_back(microRequest(at, 1));
    }

    auto run_policy = [&](QosPolicy qos) {
        ChipPool pool(poolConfig(1, 2));
        auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
        AdmissionConfig cfg;
        cfg.retainSamples = true;
        cfg.queueDepth = 2;
        cfg.qos = qos;
        cfg.overflow = OverflowPolicy::Block;
        AdmissionController ac(pool, tenants, cfg);
        return ac.run(trace);
    };

    const ServeReport fifo = run_policy(QosPolicy::Fifo);
    const ServeReport rr = run_policy(QosPolicy::RoundRobin);
    ASSERT_EQ(rr.completed, trace.size());
    // Every trickle request completed shortly after its arrival
    // under RR (one service time of slack past the horizon).
    EXPECT_EQ(rr.tenants[1].completionsBy(horizon + 500),
              rr.tenants[1].completed);
    // And far sooner than under FIFO.
    const double rr_p95 = rr.tenants[1].queueingSummary().p95;
    const double fifo_p50 = fifo.tenants[1].queueingSummary().p50;
    EXPECT_LT(rr_p95, fifo_p50)
        << "rr p95=" << rr_p95 << " fifo p50=" << fifo_p50;
}

TEST(Admission, PoolRunsBitIdenticallyAcrossSizes)
{
    // Acceptance: the same seeded trace against a 1-chip and a 4-chip
    // pool yields bit-identical outputs (only the cycle stamps move).
    TrafficGen gen(46);
    const auto specs = microSpecs({1.0, 1.0, 1.0, 1.0});
    std::vector<TenantSpec> rated = specs;
    for (auto &spec : rated)
        spec.ratePerKns = 40.0;
    const auto trace = gen.trace(rated, 20000);
    ASSERT_GT(trace.size(), 100u);

    auto run_pool = [&](std::size_t chips) {
        ChipPool pool(poolConfig(chips, 4));
        auto tenants = buildTenants(pool, gen, rated);
        AdmissionConfig cfg;
        cfg.queueDepth = 4;
        cfg.overflow = OverflowPolicy::Block;
        cfg.collectOutputs = true;
        AdmissionController ac(pool, tenants, cfg);
        return ac.run(trace);
    };

    const ServeReport one = run_pool(1);
    const ServeReport four = run_pool(4);
    EXPECT_EQ(one.completed, trace.size());
    EXPECT_EQ(four.completed, trace.size());
    EXPECT_EQ(one.outputChecksum, four.outputChecksum);
    ASSERT_EQ(one.outputs.size(), four.outputs.size());
    for (std::size_t i = 0; i < one.outputs.size(); ++i)
        EXPECT_EQ(one.outputs[i], four.outputs[i]) << "request " << i;

    // Spot-check functional correctness against the reference MVM.
    const auto &req0 = trace[0];
    const MatrixI w = gen.weights(
        WorkloadKind::Micro, TrafficGen::privateModelKey(req0.tenant));
    std::vector<i64> want(w.cols(), 0);
    for (std::size_t c = 0; c < w.cols(); ++c)
        for (std::size_t r = 0; r < w.rows(); ++r)
            want[c] += w(r, c) * req0.input[r];
    EXPECT_EQ(one.outputs[0], want);
}

TEST(Admission, ChecksumIsStableAcrossQosPolicies)
{
    TrafficGen gen(47);
    const auto specs = microSpecs({2.0, 1.0});
    std::vector<TenantSpec> rated = specs;
    for (auto &spec : rated)
        spec.ratePerKns = 30.0;
    const auto trace = gen.trace(rated, 10000);
    ASSERT_GT(trace.size(), 50u);

    u64 checksum = 0;
    bool first = true;
    for (const QosPolicy qos :
         {QosPolicy::Fifo, QosPolicy::RoundRobin,
          QosPolicy::WeightedFair}) {
        // One shared chip so the policies genuinely reorder service.
        ChipPool pool(poolConfig(1, 2));
        auto tenants = buildTenants(pool, gen, rated);
        AdmissionConfig cfg;
        cfg.retainSamples = true;
        cfg.queueDepth = 2;
        cfg.qos = qos;
        cfg.overflow = OverflowPolicy::Block;
        AdmissionController ac(pool, tenants, cfg);
        const ServeReport report = ac.run(trace);
        EXPECT_EQ(report.completed, trace.size());
        if (first) {
            checksum = report.outputChecksum;
            first = false;
        } else {
            EXPECT_EQ(report.outputChecksum, checksum)
                << qosPolicyName(qos);
        }
    }
}

TEST(Admission, InvalidConfigsThrow)
{
    TrafficGen gen(48);
    ChipPool pool(poolConfig(1, 1));
    auto tenants = buildTenants(pool, gen, microSpecs({1.0}));
    AdmissionConfig cfg;
    cfg.queueDepth = 0;
    EXPECT_THROW(AdmissionController(pool, tenants, cfg),
                 std::invalid_argument);
    cfg.queueDepth = 1;
    auto bad = tenants;
    bad[0].weight = 0.0;
    EXPECT_THROW(AdmissionController(pool, bad, cfg),
                 std::invalid_argument);
    // Per-chip windows: the vector must match the pool (one entry
    // per chip) and every entry must be positive.
    cfg.chipQueueDepth = {2, 2};
    EXPECT_THROW(AdmissionController(pool, tenants, cfg),
                 std::invalid_argument);
    cfg.chipQueueDepth = {0};
    EXPECT_THROW(AdmissionController(pool, tenants, cfg),
                 std::invalid_argument);
    cfg.chipQueueDepth = {1};
    EXPECT_NO_THROW(AdmissionController(pool, tenants, cfg));
}

TEST(Admission, MixedClockPoolsAreAccepted)
{
    // Frequency-binned heterogeneous pools are legal: every report
    // statistic, WFQ charge, and journal stamp is wall-clock, so
    // cross-chip aggregates compare like for like. A 1 GHz + 2 GHz
    // pool runs the same trace as its all-1 GHz twin and must
    // produce bit-identical outputs (the clock moves *when*, never
    // *what*) with wall-clock-consistent per-chip stats.
    const std::vector<ServeRequest> burst = floodTrace(2, 8, 2);
    AdmissionConfig cfg;
    cfg.queueDepth = 2;

    u64 mixed_checksum = 0;
    {
        TrafficGen gen(53);
        PoolConfig pcfg;
        pcfg.chips = {
            heteroChipSpec(analog::AdcKind::Sar, 1, /*clock_ghz=*/1.0),
            heteroChipSpec(analog::AdcKind::Sar, 1, /*clock_ghz=*/2.0)};
        ChipPool pool(pcfg);
        auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
        ASSERT_NE(pool.modelChip(tenants[0].model),
                  pool.modelChip(tenants[1].model));
        AdmissionController ac(pool, tenants, cfg);
        const ServeReport report = ac.run(burst);
        EXPECT_EQ(report.completed, burst.size());
        EXPECT_EQ(report.chips[0].clockGHz, 1.0);
        EXPECT_EQ(report.chips[1].clockGHz, 2.0);
        // Wall-clock consistency: each chip's makespan bounds the
        // run's, and both chips served real wall time.
        EXPECT_GT(report.makespanNs, 0u);
        for (const ChipStats &cs : report.chips) {
            EXPECT_GT(cs.completed, 0u);
            EXPECT_GT(cs.serviceNs, 0.0);
            EXPECT_LE(cs.makespanNs, report.makespanNs);
        }
        // The 2 GHz chip's wall makespan is its cycle makespan
        // halved (500 ps period), exactly.
        const Cycle mk1 = pool.runtime(1).scheduler().makespan();
        EXPECT_EQ(report.chips[1].makespanNs, mk1 / 2);
        mixed_checksum = report.outputChecksum;
    }
    {
        TrafficGen gen(53);
        PoolConfig pcfg;
        pcfg.chips = {
            heteroChipSpec(analog::AdcKind::Sar, 1, /*clock_ghz=*/1.0),
            heteroChipSpec(analog::AdcKind::Sar, 1, /*clock_ghz=*/1.0)};
        ChipPool pool(pcfg);
        auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
        AdmissionController ac(pool, tenants, cfg);
        const ServeReport report = ac.run(burst);
        EXPECT_EQ(report.completed, burst.size());
        EXPECT_EQ(report.outputChecksum, mixed_checksum);
    }
}

TEST(Admission, PerChipWindowBoundsHoldUnderLoad)
{
    // Two one-tile chips with different front-end windows: 1 slot on
    // chip 0, 4 on chip 1. A simultaneous burst of five per tenant
    // under Reject can only keep windowDepth requests in flight per
    // chip, so the rejection counts prove each chip's own bound —
    // not a shared or uniform one — was enforced.
    TrafficGen gen(51);
    ChipPool pool(poolConfig(2, 1));
    auto tenants = buildTenants(pool, gen, microSpecs({1.0, 1.0}));
    ASSERT_NE(pool.modelChip(tenants[0].model),
              pool.modelChip(tenants[1].model));
    const std::size_t chip0 = pool.modelChip(tenants[0].model);
    const std::size_t chip1 = pool.modelChip(tenants[1].model);

    std::vector<ServeRequest> burst;
    for (int i = 0; i < 5; ++i) {
        burst.push_back(microRequest(0, 0));
        burst.push_back(microRequest(0, 1));
    }
    AdmissionConfig cfg;
    cfg.chipQueueDepth.assign(2, 0);
    cfg.chipQueueDepth[chip0] = 1;
    cfg.chipQueueDepth[chip1] = 4;
    cfg.overflow = OverflowPolicy::Reject;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(burst);

    EXPECT_EQ(report.tenants[0].completed, 1u);
    EXPECT_EQ(report.tenants[0].rejected, 4u);
    EXPECT_EQ(report.tenants[1].completed, 4u);
    EXPECT_EQ(report.tenants[1].rejected, 1u);
    ASSERT_EQ(report.chips.size(), 2u);
    EXPECT_EQ(report.chips[chip0].windowDepth, 1u);
    EXPECT_EQ(report.chips[chip1].windowDepth, 4u);
    EXPECT_EQ(report.chips[chip0].completed, 1u);
    EXPECT_EQ(report.chips[chip1].completed, 4u);
}

TEST(Admission, PerChipStatsBreakDownTheReport)
{
    TrafficGen gen(52);
    ChipPool pool(poolConfig(2, 2));
    auto specs = microSpecs({1.0, 1.0, 1.0});
    auto tenants = buildTenants(pool, gen, specs);
    AdmissionConfig cfg;
    cfg.queueDepth = 2;
    cfg.overflow = OverflowPolicy::Block;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(gen.trace(specs, 4000));
    ASSERT_GT(report.completed, 0u);

    ASSERT_EQ(report.chips.size(), 2u);
    u64 completed = 0, mvms = 0;
    std::size_t tenant_count = 0;
    for (std::size_t c = 0; c < report.chips.size(); ++c) {
        const ChipStats &cs = report.chips[c];
        completed += cs.completed;
        mvms += cs.mvms;
        tenant_count += cs.tenants;
        EXPECT_LE(cs.makespanNs, report.makespanNs);
        if (cs.completed > 0) {
            EXPECT_GT(cs.serviceNs, 0.0);
            EXPECT_GT(cs.utilization(), 0.0);
            EXPECT_GT(cs.throughputPerKns(), 0.0);
        }
        // Uniform pools carry the default spec name and the uniform
        // window.
        EXPECT_EQ(cs.name, "chip");
        EXPECT_EQ(cs.windowDepth, 2u);
        EXPECT_EQ(cs.hcts, 2u);
    }
    EXPECT_EQ(completed, report.completed);
    EXPECT_EQ(tenant_count, tenants.size());
    u64 tenant_mvms = 0;
    for (const auto &t : report.tenants)
        tenant_mvms += t.mvms;
    EXPECT_EQ(mvms, tenant_mvms);
}

TEST(Admission, TenantSpecValidationThrows)
{
    // The satellite contract: non-positive weight or rate fails with
    // std::invalid_argument at the traffic layer, both directly and
    // through buildTenants()/trace().
    TenantSpec bad_weight;
    bad_weight.name = "w";
    bad_weight.kind = WorkloadKind::Micro;
    bad_weight.weight = 0.0;
    bad_weight.ratePerKns = 1.0;
    EXPECT_THROW(TrafficGen::validateSpec(bad_weight),
                 std::invalid_argument);

    TenantSpec bad_rate;
    bad_rate.name = "r";
    bad_rate.kind = WorkloadKind::Micro;
    bad_rate.weight = 1.0;
    bad_rate.ratePerKns = -2.0;
    EXPECT_THROW(TrafficGen::validateSpec(bad_rate),
                 std::invalid_argument);

    TrafficGen gen(1);
    EXPECT_THROW((void)gen.trace({bad_rate}, 1000),
                 std::invalid_argument);
    ChipPool pool(poolConfig(1, 1));
    EXPECT_THROW((void)buildTenants(pool, gen, {bad_weight}),
                 std::invalid_argument);

    TenantSpec good;
    good.name = "ok";
    good.kind = WorkloadKind::Micro;
    good.weight = 0.5;
    good.ratePerKns = 0.25;
    EXPECT_NO_THROW(TrafficGen::validateSpec(good));
}

/** Chip large enough for one TinyCnn inference model. */
PoolConfig
inferPoolConfig()
{
    PoolConfig cfg;
    cfg.chip.hct.dce.numPipelines = 2;
    cfg.chip.hct.dce.pipeline.depth = 32;
    cfg.chip.hct.dce.pipeline.width = 32;
    cfg.chip.hct.dce.pipeline.numRegs = 8;
    cfg.chip.hct.ace.numArrays = 16;
    cfg.chip.hct.ace.arrayRows = 64;
    cfg.chip.hct.ace.arrayCols = 32;
    cfg.chip.numHcts = 3;
    cfg.numChips = 1;
    return cfg;
}

TEST(Admission, InferenceRequestsServeWholeForwards)
{
    // One CnnInfer tenant: every completed request is a whole TinyCnn
    // forward — one window slot per inference (queueDepth 1 still
    // makes progress), outputs bit-identical to the reference
    // network, per-inference latency samples, and the WFQ nominal
    // cost charged at the whole-inference oracle latency.
    TrafficGen gen(21);
    ChipPool pool(inferPoolConfig());

    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn_infer";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 0.05;
    auto tenants = buildTenants(pool, gen, specs);
    EXPECT_TRUE(pool.isInference(tenants[0].model));
    EXPECT_EQ(pool.modelRows(tenants[0].model), 64u);

    // Whole-inference oracle cost: far above any single-MVM cost.
    const Cycle nominal =
        pool.nominalServiceCycles(tenants[0].model, 8);
    EXPECT_GT(nominal, 1000u);

    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 1;
    cfg.qos = QosPolicy::WeightedFair;
    cfg.overflow = OverflowPolicy::Block;
    cfg.collectOutputs = true;
    AdmissionController ac(pool, tenants, cfg);
    const auto trace = gen.trace(specs, 120000);
    ASSERT_GE(trace.size(), 3u);
    const ServeReport report = ac.run(trace);

    EXPECT_EQ(report.completed, trace.size());
    const TenantStats &stats = report.tenants[0];
    // 81 MVMs per TinyCnn inference.
    EXPECT_EQ(stats.mvms, stats.completed * 81u);
    ASSERT_EQ(stats.latency.size(), stats.completed);

    const cnn::TinyCnn ref =
        gen.cnnInferNet(TrafficGen::privateModelKey(0));
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(report.outputs[i],
                  ref.infer(ref.inputFromFlat(trace[i].input)))
            << "request " << i;
}

/** One chip large enough for a TinyCnn + encoder + a Micro matrix. */
PoolConfig
stagePoolConfig()
{
    PoolConfig cfg = inferPoolConfig();
    cfg.chip.numHcts = 10;
    return cfg;
}

TEST(Admission, StageGranularityKeepsOutputsBitIdentical)
{
    // The acceptance invariant: the same mixed mvm+inference trace
    // under inference- and stage-granular admission completes the
    // same requests with bit-identical outputs (and therefore equal
    // FNV checksums); only cycle stamps move.
    TrafficGen gen(61);
    std::vector<TenantSpec> specs(3);
    specs[0].name = "cnn_infer";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 0.1;
    specs[1].name = "llm_infer";
    specs[1].kind = WorkloadKind::LlmInfer;
    specs[1].ratePerKns = 0.05;
    specs[2].name = "micro";
    specs[2].kind = WorkloadKind::Micro;
    specs[2].ratePerKns = 1.0;
    const auto trace = gen.trace(specs, 60000);
    ASSERT_GT(trace.size(), 20u);

    auto run_granularity = [&](Granularity granularity) {
        ChipPool pool(stagePoolConfig());
        auto tenants = buildTenants(pool, gen, specs);
        AdmissionConfig cfg;
        cfg.queueDepth = 2;
        cfg.qos = QosPolicy::WeightedFair;
        cfg.overflow = OverflowPolicy::Block;
        cfg.granularity = granularity;
        cfg.collectOutputs = true;
        AdmissionController ac(pool, tenants, cfg);
        return ac.run(trace);
    };

    const ServeReport whole = run_granularity(Granularity::Inference);
    const ServeReport staged = run_granularity(Granularity::Stage);
    EXPECT_EQ(whole.completed, trace.size());
    EXPECT_EQ(staged.completed, trace.size());
    EXPECT_EQ(whole.outputChecksum, staged.outputChecksum);
    ASSERT_EQ(whole.outputs.size(), staged.outputs.size());
    for (std::size_t i = 0; i < whole.outputs.size(); ++i)
        EXPECT_EQ(whole.outputs[i], staged.outputs[i])
            << "request " << i;

    // Same MVMs issued either way; the stage cell interleaved
    // stages of distinct requests, the whole-unit cell cannot.
    EXPECT_EQ(whole.chips[0].issued, staged.chips[0].issued);
    EXPECT_EQ(whole.chips[0].interleavedStages, 0u);
    EXPECT_GT(staged.chips[0].interleavedStages, 0u);

    // Spot-check one inference output against the reference net.
    const cnn::TinyCnn ref =
        gen.cnnInferNet(TrafficGen::privateModelKey(0));
    for (std::size_t i = 0; i < trace.size(); ++i)
        if (trace[i].tenant == 0) {
            EXPECT_EQ(staged.outputs[i],
                      ref.infer(ref.inputFromFlat(trace[i].input)));
            break;
        }
}

TEST(Admission, StageSlotsReleaseOnStageCompletion)
{
    // Window of one, an inference request admitted at cycle 0, and a
    // single-MVM request right behind it. Whole-unit admission holds
    // the slot for the entire graph, so the MVM starts only after
    // the inference completes; stage-granular admission frees the
    // slot at the first stage's completion, so under round-robin
    // QoS (which alternates tenants; FIFO would keep serving the
    // older request's continuations) the MVM starts while the
    // inference is still mid-graph.
    TrafficGen gen(62);
    std::vector<TenantSpec> specs(2);
    specs[0].name = "cnn_infer";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 0.1;
    specs[1].name = "micro";
    specs[1].kind = WorkloadKind::Micro;
    specs[1].ratePerKns = 1.0;

    std::vector<ServeRequest> trace(2);
    trace[0].arrival = 0;
    trace[0].tenant = 0;
    trace[0].input.assign(TrafficGen::inputRows(WorkloadKind::CnnInfer),
                          2);
    trace[1].arrival = 1;
    trace[1].tenant = 1;
    trace[1].input.assign(TrafficGen::inputRows(WorkloadKind::Micro),
                          1);

    auto run_granularity = [&](Granularity granularity) {
        ChipPool pool(stagePoolConfig());
        auto tenants = buildTenants(pool, gen, specs);
        AdmissionConfig cfg;
        cfg.retainSamples = true;
        cfg.queueDepth = 1;
        cfg.qos = QosPolicy::RoundRobin;
        cfg.overflow = OverflowPolicy::Block;
        cfg.granularity = granularity;
        AdmissionController ac(pool, tenants, cfg);
        return ac.run(trace);
    };

    const ServeReport whole = run_granularity(Granularity::Inference);
    const ServeReport staged = run_granularity(Granularity::Stage);
    ASSERT_EQ(whole.completed, 2u);
    ASSERT_EQ(staged.completed, 2u);

    const double whole_infer_done = whole.tenants[0].doneNs[0];
    const double whole_mvm_start =
        1.0 + whole.tenants[1].queueing[0];
    EXPECT_GE(whole_mvm_start, whole_infer_done);

    const double staged_infer_done = staged.tenants[0].doneNs[0];
    const double staged_mvm_start =
        1.0 + staged.tenants[1].queueing[0];
    EXPECT_LT(staged_mvm_start, staged_infer_done);
    // The MVM slipped between two stages of the inference: that is
    // the interleaving the per-chip admission sequence counts.
    EXPECT_GE(staged.chips[0].interleavedStages, 1u);
}

TEST(Admission, StageRejectFinishesBegunRequestsAndDropsArrivals)
{
    // Reject + window 1 at stage granularity: the admitted request's
    // continuation stages always claim freed slots (a begun forward
    // is never stranded), burst arrivals against the held window are
    // dropped, and a late arrival after the graph drains is served.
    TrafficGen gen(63);
    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn_infer";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 0.1;

    const std::size_t rows =
        TrafficGen::inputRows(WorkloadKind::CnnInfer);
    std::vector<ServeRequest> trace(4);
    trace[0].arrival = 0;
    trace[1].arrival = 1;
    trace[2].arrival = 2;
    // Far beyond one TinyCnn graph span (~15k cycles here).
    trace[3].arrival = 100000;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].tenant = 0;
        trace[i].input.assign(rows, static_cast<i64>(i + 1));
    }

    ChipPool pool(stagePoolConfig());
    auto tenants = buildTenants(pool, gen, specs);
    AdmissionConfig cfg;
    cfg.queueDepth = 1;
    cfg.overflow = OverflowPolicy::Reject;
    cfg.granularity = Granularity::Stage;
    cfg.collectOutputs = true;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(trace);

    EXPECT_EQ(report.completed, 2u);
    EXPECT_EQ(report.rejected, 2u);
    const cnn::TinyCnn ref =
        gen.cnnInferNet(TrafficGen::privateModelKey(0));
    EXPECT_EQ(report.outputs[0],
              ref.infer(ref.inputFromFlat(trace[0].input)));
    EXPECT_TRUE(report.outputs[1].empty());
    EXPECT_TRUE(report.outputs[2].empty());
    EXPECT_EQ(report.outputs[3],
              ref.infer(ref.inputFromFlat(trace[3].input)));
}

TEST(Admission, BurstSpecValidationThrows)
{
    TenantSpec one_sided;
    one_sided.name = "b";
    one_sided.kind = WorkloadKind::Micro;
    one_sided.burst.onNs = 100;
    EXPECT_THROW(TrafficGen::validateSpec(one_sided),
                 std::invalid_argument);
    one_sided.burst = {0, 100};
    EXPECT_THROW(TrafficGen::validateSpec(one_sided),
                 std::invalid_argument);

    TrafficGen gen(64);
    EXPECT_THROW((void)gen.trace({one_sided}, 1000),
                 std::invalid_argument);
    ChipPool pool(poolConfig(1, 1));
    EXPECT_THROW((void)buildTenants(pool, gen, {one_sided}),
                 std::invalid_argument);

    TenantSpec bursty = one_sided;
    bursty.burst = {100, 300};
    EXPECT_NO_THROW(TrafficGen::validateSpec(bursty));
    TenantSpec steady = one_sided;
    steady.burst = {0, 0};
    EXPECT_NO_THROW(TrafficGen::validateSpec(steady));
}

TEST(Admission, BurstyArrivalsStayInOnWindows)
{
    TrafficGen gen(65);
    TenantSpec spec;
    spec.name = "bursty";
    spec.kind = WorkloadKind::Micro;
    spec.ratePerKns = 50.0;
    spec.burst = {500, 1500};

    const auto trace = gen.trace({spec}, 20000);
    ASSERT_GT(trace.size(), 50u);
    const Cycle period = spec.burst.onNs + spec.burst.offNs;
    Cycle prev = 0;
    for (const ServeRequest &req : trace) {
        EXPECT_LT(req.arrival % period, spec.burst.onNs)
            << "arrival " << req.arrival << " falls in an off-phase";
        EXPECT_GE(req.arrival, prev);
        prev = req.arrival;
    }
    // Deterministic: the same seed replays the same trace.
    const auto replay = TrafficGen(65).trace({spec}, 20000);
    ASSERT_EQ(replay.size(), trace.size());
    for (std::size_t i = 0; i < trace.size(); ++i)
        EXPECT_EQ(replay[i].arrival, trace[i].arrival);

    // A bursty neighbour never perturbs a steady tenant's stream
    // (streams are salted by tenant index, so keep steady at 0).
    TenantSpec steady;
    steady.name = "steady";
    steady.kind = WorkloadKind::Micro;
    steady.ratePerKns = 10.0;
    const auto mixed = gen.trace({steady, spec}, 20000);
    const auto solo = gen.trace({steady}, 20000);
    std::vector<Cycle> mixed_arrivals;
    for (const ServeRequest &req : mixed)
        if (req.tenant == 0)
            mixed_arrivals.push_back(req.arrival);
    ASSERT_EQ(mixed_arrivals.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i)
        EXPECT_EQ(mixed_arrivals[i], solo[i].arrival);
}

TEST(Admission, InferenceBlocksHonourArrivalOrderAndWindow)
{
    // Two arrivals back to back against a window of one: the second
    // inference is admitted only when the first completes, so its
    // start cycle clears the first's done cycle.
    TrafficGen gen(22);
    ChipPool pool(inferPoolConfig());
    std::vector<TenantSpec> specs(1);
    specs[0].name = "cnn_infer";
    specs[0].kind = WorkloadKind::CnnInfer;
    specs[0].ratePerKns = 1.0;
    auto tenants = buildTenants(pool, gen, specs);

    std::vector<ServeRequest> trace(2);
    for (std::size_t i = 0; i < trace.size(); ++i) {
        trace[i].arrival = i;
        trace[i].tenant = 0;
        trace[i].input.assign(64, static_cast<i64>(i + 1));
    }

    AdmissionConfig cfg;
    cfg.retainSamples = true;
    cfg.queueDepth = 1;
    AdmissionController ac(pool, tenants, cfg);
    const ServeReport report = ac.run(trace);
    ASSERT_EQ(report.completed, 2u);
    const TenantStats &stats = report.tenants[0];
    // queueing = start - arrival: the second request waited at least
    // the first's service time behind the one-slot window.
    EXPECT_GT(stats.queueing[1], 0.0);
    EXPECT_GE(stats.doneNs[1], stats.doneNs[0]);
}

} // namespace
} // namespace serve
} // namespace darth
