/**
 * @file
 * Tests for the kernel timing/energy oracle. The load-bearing
 * property is that a cached cost is a function of the shape and the
 * tile configuration only — never of which shapes happened to be
 * measured before it on the reused scratch tile. Order-dependent
 * oracle costs would silently skew the serving layer's weighted-fair
 * charges and cost-aware placement ranking.
 */

#include <gtest/gtest.h>

#include "runtime/KernelModel.h"

namespace darth
{
namespace runtime
{
namespace
{

hct::HctConfig
smallTile()
{
    hct::HctConfig cfg;
    cfg.dce.numPipelines = 2;
    cfg.dce.pipeline.depth = 32;
    cfg.dce.pipeline.width = 32;
    cfg.dce.pipeline.numRegs = 8;
    cfg.ace.numArrays = 16;
    cfg.ace.arrayRows = 64;
    cfg.ace.arrayCols = 32;
    return cfg;
}

MvmShape
shape(std::size_t rows, std::size_t cols, int element_bits,
      int bits_per_cell, int input_bits)
{
    MvmShape s;
    s.rows = rows;
    s.cols = cols;
    s.elementBits = element_bits;
    s.bitsPerCell = bits_per_cell;
    s.inputBits = input_bits;
    return s;
}

TEST(KernelModel, MvmCostIndependentOfMeasurementOrder)
{
    // Measure the same three shapes in opposite orders on two
    // oracles: every cached cost must agree exactly. (Regression:
    // the reused scratch tile's arbiter and DCE stage clocks used
    // to carry over between measurements, inflating each shape by
    // the cumulative latency of whatever was measured before it.)
    const MvmShape tiny = shape(8, 8, 1, 1, 1);
    const MvmShape aes = shape(32, 32, 1, 1, 1);
    const MvmShape cnn = shape(72, 16, 8, 2, 4);

    KernelModel forward(smallTile());
    const KernelCost tiny_first = forward.mvm(tiny);
    const KernelCost aes_mid = forward.mvm(aes);
    const KernelCost cnn_last = forward.mvm(cnn);

    KernelModel backward(smallTile());
    const KernelCost cnn_first = backward.mvm(cnn);
    const KernelCost aes_mid2 = backward.mvm(aes);
    const KernelCost tiny_last = backward.mvm(tiny);

    EXPECT_EQ(tiny_first.latency, tiny_last.latency);
    EXPECT_EQ(aes_mid.latency, aes_mid2.latency);
    EXPECT_EQ(cnn_last.latency, cnn_first.latency);
    EXPECT_EQ(tiny_first.amortized, tiny_last.amortized);
    EXPECT_EQ(aes_mid.amortized, aes_mid2.amortized);
    EXPECT_EQ(cnn_last.amortized, cnn_first.amortized);

    // A later shape never pays for an earlier one: the tiny shape
    // must stay far cheaper than the 8-bit layer it was measured
    // after.
    EXPECT_LT(tiny_last.latency, cnn_first.latency);
}

TEST(KernelModel, MvmCostIsCached)
{
    KernelModel km(smallTile());
    const MvmShape s = shape(32, 32, 1, 1, 1);
    const KernelCost first = km.mvm(s);
    const KernelCost again = km.mvm(s);
    EXPECT_EQ(first.latency, again.latency);
    EXPECT_EQ(first.amortized, again.amortized);
    EXPECT_EQ(first.energy, again.energy);
}

} // namespace
} // namespace runtime
} // namespace darth
