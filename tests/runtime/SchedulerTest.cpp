/**
 * @file
 * Tests for the asynchronous session API: the submission queue,
 * cross-HCT packing, per-session isolation, RAII handle lifetime,
 * and bit-identity between interleaved and sequential execution.
 */

#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "common/Random.h"
#include "runtime/Runtime.h"

namespace darth
{
namespace runtime
{
namespace
{

ChipConfig
smallChip(std::size_t num_hcts = 4)
{
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, i64 lo, i64 hi,
             u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(lo, hi);
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

std::vector<std::vector<i64>>
randomInputs(std::size_t count, std::size_t len, u64 seed)
{
    Rng rng(seed);
    std::vector<std::vector<i64>> inputs(count,
                                         std::vector<i64>(len, 0));
    for (auto &x : inputs)
        for (auto &v : x)
            v = rng.uniformInt(i64{-4}, i64{3});
    return inputs;
}

// Acceptance: two sessions interleaving submissions on one chip get
// isolated handles and results bit-identical to running the same
// work sequentially, one blocking MVM at a time, on a fresh chip.
TEST(Scheduler, InterleavedSessionsMatchSequentialExecution)
{
    const MatrixI m_a = randomMatrix(8, 8, -2, 2, 501);
    const MatrixI m_b = randomMatrix(8, 8, -3, 3, 502);
    const auto inputs_a = randomInputs(6, 8, 503);
    const auto inputs_b = randomInputs(6, 8, 504);

    // Interleaved: both sessions submit everything before waiting.
    Chip chip(smallChip(4));
    Runtime rt(chip);
    Session tenant_a = rt.createSession();
    Session tenant_b = rt.createSession();
    const MatrixHandle handle_a = tenant_a.setMatrix(m_a, 2, 0);
    const MatrixHandle handle_b = tenant_b.setMatrix(m_b, 2, 0);
    EXPECT_NE(handle_a.plan().parts[0].hctIndex,
              handle_b.plan().parts[0].hctIndex);

    std::vector<MvmFuture> futures_a, futures_b;
    for (std::size_t i = 0; i < inputs_a.size(); ++i) {
        futures_a.push_back(tenant_a.submit(handle_a, inputs_a[i], 3));
        futures_b.push_back(tenant_b.submit(handle_b, inputs_b[i], 3));
    }
    EXPECT_EQ(rt.scheduler().pendingCount(),
              inputs_a.size() + inputs_b.size());

    // Sequential: one fresh chip per tenant, strictly blocking.
    Chip seq_chip_a(smallChip(4));
    Runtime seq_rt_a(seq_chip_a);
    Session seq_a = seq_rt_a.createSession();
    const MatrixHandle seq_handle_a = seq_a.setMatrix(m_a, 2, 0);
    Chip seq_chip_b(smallChip(4));
    Runtime seq_rt_b(seq_chip_b);
    Session seq_b = seq_rt_b.createSession();
    const MatrixHandle seq_handle_b = seq_b.setMatrix(m_b, 2, 0);

    for (std::size_t i = 0; i < inputs_a.size(); ++i) {
        const auto got_a = tenant_a.wait(futures_a[i]);
        const auto got_b = tenant_b.wait(futures_b[i]);
        const auto want_a = seq_a.execMVM(seq_handle_a, inputs_a[i], 3);
        const auto want_b = seq_b.execMVM(seq_handle_b, inputs_b[i], 3);
        EXPECT_EQ(got_a.values, want_a.values) << "tenant A, MVM " << i;
        EXPECT_EQ(got_b.values, want_b.values) << "tenant B, MVM " << i;
        EXPECT_EQ(got_a.values, reference(m_a, inputs_a[i]));
        EXPECT_EQ(got_b.values, reference(m_b, inputs_b[i]));
    }
    EXPECT_EQ(rt.scheduler().pendingCount(), 0u);
}

TEST(Scheduler, SessionsCannotUseForeignHandles)
{
    Chip chip(smallChip(4));
    Runtime rt(chip);
    Session tenant_a = rt.createSession();
    Session tenant_b = rt.createSession();
    const MatrixHandle handle_a =
        tenant_a.setMatrix(randomMatrix(8, 8, 0, 1, 505), 1, 0);
    EXPECT_THROW(tenant_b.submit(handle_a, std::vector<i64>(8, 1), 1),
                 std::invalid_argument);
    // The rightful owner is unaffected.
    EXPECT_EQ(tenant_a.execMVM(handle_a, std::vector<i64>(8, 1), 1)
                  .values,
              reference(handle_a.matrix(), std::vector<i64>(8, 1)));
}

TEST(Scheduler, HandleMoveTransfersOwnership)
{
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 506), 1, 0);
    const MatrixI m = a.matrix();
    MatrixHandle b = std::move(a);
    EXPECT_FALSE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_THROW(session.submit(a, std::vector<i64>(8, 1), 1),
                 std::invalid_argument);
    EXPECT_EQ(session.execMVM(b, std::vector<i64>(8, 1), 1).values,
              reference(m, std::vector<i64>(8, 1)));
    // release() is idempotent and frees the tile.
    b.release();
    b.release();
    EXPECT_EQ(rt.freeHcts(), 2u);
}

TEST(Scheduler, PendingWorkSurvivesHandleRelease)
{
    // Releasing a handle drains its in-flight MVMs; the futures stay
    // resolvable afterwards.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, -1, 1, 507);
    MatrixHandle handle = session.setMatrix(m, 1, 0);
    const std::vector<i64> x(8, 1);
    const MvmFuture future = session.submit(handle, x, 1);
    handle.release();
    EXPECT_EQ(rt.freeHcts(), 2u);
    EXPECT_EQ(session.wait(future).values, reference(m, x));
}

TEST(Scheduler, DisjointPlacementsOverlapInTime)
{
    // Two matrices on different tiles: a batch against each overlaps
    // in simulated time, so the makespan is far below the serialized
    // sum.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, -1, 1, 508), 1, 0);
    const MatrixHandle b =
        session.setMatrix(randomMatrix(8, 8, -1, 1, 509), 1, 0);
    const std::vector<i64> x(8, 1);
    const MvmFuture fa = session.submit(a, x, 2);
    const MvmFuture fb = session.submit(b, x, 2);
    const auto ra = session.wait(fa);
    const auto rb = session.wait(fb);
    // Both start at cycle 0 on their own tile.
    EXPECT_EQ(ra.start, 0u);
    EXPECT_EQ(rb.start, 0u);
    EXPECT_EQ(rt.scheduler().makespan(),
              std::max(ra.done, rb.done));
}

TEST(Scheduler, SameMatrixStreamIssuesAtAmortizedRate)
{
    // Back-to-back MVMs against one placement pipeline at the
    // KernelModel amortized rate (the throughput the mappers and
    // fig13 assume), not at the full serialized latency.
    const auto cfg = smallChip(1);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, -1, 1, 510), 1, 0);

    constexpr std::size_t kBatch = 5;
    std::vector<MvmFuture> futures;
    for (std::size_t i = 0; i < kBatch; ++i)
        futures.push_back(
            session.submit(handle, std::vector<i64>(8, 1), 2));

    KernelModel km(cfg.hct);
    const auto oracle = km.mvm(MvmShape{8, 8, 1, 1, 2});
    Cycle prev_done = 0;
    for (std::size_t i = 0; i < kBatch; ++i) {
        const auto result = session.wait(futures[i]);
        if (i == 0) {
            EXPECT_EQ(result.done, oracle.latency);
        } else {
            EXPECT_EQ(result.done - prev_done, oracle.amortized)
                << "MVM " << i << " did not pipeline";
        }
        prev_done = result.done;
    }
}

TEST(Scheduler, WaitAllDrainsEverything)
{
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 511), 1, 0);
    for (int i = 0; i < 4; ++i)
        (void)session.submit(handle, std::vector<i64>(8, 1), 1);
    EXPECT_EQ(rt.scheduler().pendingCount(), 4u);
    session.waitAll();
    EXPECT_EQ(rt.scheduler().pendingCount(), 0u);
    EXPECT_EQ(rt.scheduler().completedCount(), 4u);
    EXPECT_GT(rt.scheduler().makespan(), 0u);
}

TEST(Scheduler, SessionWaitAllLeavesOtherSessionsQueued)
{
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session tenant_a = rt.createSession();
    Session tenant_b = rt.createSession();
    const MatrixHandle handle_a =
        tenant_a.setMatrix(randomMatrix(8, 8, 0, 1, 512), 1, 0);
    const MatrixHandle handle_b =
        tenant_b.setMatrix(randomMatrix(8, 8, 0, 1, 513), 1, 0);
    (void)tenant_a.submit(handle_a, std::vector<i64>(8, 1), 1);
    const MvmFuture fb =
        tenant_b.submit(handle_b, std::vector<i64>(8, 1), 1);
    tenant_a.waitAll();
    EXPECT_EQ(rt.scheduler().pendingCount(), 1u);
    EXPECT_EQ(tenant_b.wait(fb).values,
              reference(handle_b.matrix(), std::vector<i64>(8, 1)));
}

TEST(Scheduler, CrossSessionWaitIsRejected)
{
    // Result isolation: a session cannot resolve (and consume)
    // another session's future, before or after execution.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session tenant_a = rt.createSession();
    Session tenant_b = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, -1, 1, 516);
    const MatrixHandle handle_a = tenant_a.setMatrix(m, 1, 0);
    const std::vector<i64> x(8, 1);
    const MvmFuture pending = tenant_a.submit(handle_a, x, 1);
    EXPECT_THROW((void)tenant_b.wait(pending), std::invalid_argument);
    const MvmFuture executed = tenant_a.submit(handle_a, x, 1);
    tenant_a.waitAll();
    EXPECT_THROW((void)tenant_b.wait(executed),
                 std::invalid_argument);
    // The owner still collects both.
    EXPECT_EQ(tenant_a.wait(pending).values, reference(m, x));
    EXPECT_EQ(tenant_a.wait(executed).values, reference(m, x));
}

TEST(Scheduler, MidStreamEarliestStillPaysFullLatency)
{
    // A request whose `earliest` lands inside a running same-matrix
    // stream pipelines, but can never complete sooner than one full
    // MVM after its own issue cycle.
    const auto cfg = smallChip(1);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, -1, 1, 517), 1, 0);
    KernelModel km(cfg.hct);
    const auto oracle = km.mvm(MvmShape{8, 8, 1, 1, 2});

    const MvmFuture first =
        session.submit(handle, std::vector<i64>(8, 1), 2);
    // Issue just before the first MVM completes.
    const Cycle mid = oracle.latency - 1;
    const MvmFuture second =
        session.submit(handle, std::vector<i64>(8, 1), 2, mid);
    (void)session.wait(first);
    const auto result = session.wait(second);
    EXPECT_GE(result.start, mid);
    EXPECT_GE(result.done, result.start + oracle.latency);
}

TEST(Scheduler, FuturesResolveExactlyOnce)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 514), 1, 0);
    const MvmFuture future =
        session.submit(handle, std::vector<i64>(8, 1), 1);
    (void)session.wait(future);
    EXPECT_THROW((void)session.wait(future), std::invalid_argument);
    EXPECT_THROW((void)session.wait(MvmFuture{}),
                 std::invalid_argument);
}

TEST(Scheduler, SessionTeardownDrainsAndDiscards)
{
    // A session that dies with queued work executes it (handles may
    // outlive the session object) but its uncollected results are
    // dropped rather than retained forever.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    {
        Session session = rt.createSession();
        const MatrixHandle handle =
            session.setMatrix(randomMatrix(8, 8, 0, 1, 518), 1, 0);
        for (int i = 0; i < 3; ++i)
            (void)session.submit(handle, std::vector<i64>(8, 1), 1);
        EXPECT_EQ(rt.scheduler().pendingCount(), 3u);
    }
    EXPECT_EQ(rt.scheduler().pendingCount(), 0u);
    EXPECT_EQ(rt.scheduler().completedCount(), 3u);
    EXPECT_EQ(rt.scheduler().uncollectedCount(), 0u);
    // The chip is fully reusable by the next tenant.
    EXPECT_EQ(rt.freeHcts(), 2u);
    Session next = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, -1, 1, 519);
    const MatrixHandle handle = next.setMatrix(m, 1, 0);
    EXPECT_EQ(next.execMVM(handle, std::vector<i64>(8, 1), 1).values,
              reference(m, std::vector<i64>(8, 1)));
}

TEST(Scheduler, PipelinedStreamDoesNotInflateLaterIdleIssue)
{
    // The functional Hct executes pipelined same-matrix streams
    // serially, so its internal clock would drift ahead of the
    // modeled amortized timeline; the scheduler rebases it after
    // every issue. A request issued after the stream drains must pay
    // one MVM latency from its own start, not the phantom serial
    // time.
    const auto cfg = smallChip(1);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 526), 1, 0);
    KernelModel km(cfg.hct);
    const auto oracle = km.mvm(MvmShape{8, 8, 1, 1, 2});

    for (int i = 0; i < 10; ++i)
        (void)session.submit(handle, std::vector<i64>(8, 1), 2);
    session.waitAll();
    const Cycle drained = rt.scheduler().makespan();
    // Well past the drained schedule, but far less than the serial
    // sum the tile would have accumulated without the rebase.
    const Cycle late = drained + 2 * oracle.latency;
    ASSERT_LT(late, 10 * oracle.latency);
    const auto result = session.execMVM(
        handle, std::vector<i64>(8, 1), 2, late);
    EXPECT_EQ(result.start, late);
    EXPECT_EQ(result.done, late + oracle.latency);
}

TEST(Scheduler, QueueDepthAndPendingRequestsTrackSessions)
{
    Chip chip(smallChip(3));
    Runtime rt(chip);
    Session tenant_a = rt.createSession();
    Session tenant_b = rt.createSession();
    // Two distinct matrices for tenant A so draining its session
    // cannot opportunistically pipeline into tenant B's tile.
    const MatrixHandle handle_a1 =
        tenant_a.setMatrix(randomMatrix(8, 8, 0, 1, 520), 1, 0);
    const MatrixHandle handle_a2 =
        tenant_a.setMatrix(randomMatrix(8, 8, 0, 1, 525), 1, 0);
    const MatrixHandle handle_b =
        tenant_b.setMatrix(randomMatrix(8, 8, 0, 1, 521), 1, 0);
    EXPECT_EQ(rt.scheduler().queueDepth(), 0u);
    (void)tenant_a.submit(handle_a1, std::vector<i64>(8, 1), 1);
    (void)tenant_a.submit(handle_a2, std::vector<i64>(8, 1), 1);
    (void)tenant_b.submit(handle_b, std::vector<i64>(8, 1), 1);
    EXPECT_EQ(rt.scheduler().queueDepth(), 3u);
    EXPECT_EQ(rt.scheduler().queueDepth(),
              rt.scheduler().pendingCount());
    EXPECT_EQ(rt.scheduler().pendingRequests(tenant_a.id()), 2u);
    EXPECT_EQ(rt.scheduler().pendingRequests(tenant_b.id()), 1u);
    EXPECT_EQ(rt.scheduler().pendingRequests(999), 0u);
    tenant_a.waitAll();
    EXPECT_EQ(rt.scheduler().pendingRequests(tenant_a.id()), 0u);
    EXPECT_EQ(rt.scheduler().queueDepth(), 1u);
    EXPECT_EQ(rt.scheduler().pendingRequests(tenant_b.id()), 1u);
}

TEST(Scheduler, DequeueHookOverridesGreedyOrder)
{
    // Two queued requests on disjoint tiles: the greedy default
    // executes the first-submitted one when resolving it; a hook that
    // picks the newest id executes the other one first instead.
    auto run_case = [](bool install_hook) {
        Chip chip(smallChip(2));
        Runtime rt(chip);
        if (install_hook)
            rt.scheduler().setDequeueHook(
                [](const std::vector<QueuedRequest> &queue) {
                    std::size_t best = 0;
                    for (std::size_t i = 1; i < queue.size(); ++i)
                        if (queue[i].id > queue[best].id)
                            best = i;
                    return best;
                });
        Session session = rt.createSession();
        const MatrixHandle a =
            session.setMatrix(randomMatrix(8, 8, 0, 1, 522), 1, 0);
        const MatrixHandle b =
            session.setMatrix(randomMatrix(8, 8, 0, 1, 523), 1, 0);
        const MvmFuture fa =
            session.submit(a, std::vector<i64>(8, 1), 1);
        (void)session.submit(b, std::vector<i64>(8, 1), 1);
        (void)session.wait(fa);
        // Greedy: only `fa` has executed, `fb` is still queued.
        // Newest-first hook: `fb` executed on the way to `fa`.
        return rt.scheduler().uncollectedCount();
    };
    EXPECT_EQ(run_case(false), 0u);
    EXPECT_EQ(run_case(true), 1u);
}

TEST(Scheduler, SubmissionOrderHookKeepsFifoTimingUnderEarliest)
{
    // A same-matrix stream submitted out of earliest order: the
    // greedy packer would run the unconstrained request first; the
    // submission-order hook serves strictly in submission order, so
    // the later-submitted request pays the pipeline spacing.
    const auto cfg = smallChip(1);
    KernelModel km(cfg.hct);
    const auto oracle = km.mvm(MvmShape{8, 8, 1, 1, 2});

    Chip chip(cfg);
    Runtime rt(chip);
    rt.scheduler().setDequeueHook(Scheduler::submissionOrderHook());
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 524), 1, 0);
    const Cycle late = 10 * oracle.latency;
    const MvmFuture constrained =
        session.submit(handle, std::vector<i64>(8, 1), 2, late);
    const MvmFuture free_req =
        session.submit(handle, std::vector<i64>(8, 1), 2);
    const auto r_constrained = session.wait(constrained);
    const auto r_free = session.wait(free_req);
    // Submission order was honoured: the unconstrained request ran
    // second, into the pipeline the constrained one opened.
    EXPECT_EQ(r_constrained.start, late);
    EXPECT_GE(r_free.start, late);
}

TEST(Scheduler, EarliestBoundsTheStartCycle)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 515), 1, 0);
    const auto result = session.execMVM(
        handle, std::vector<i64>(8, 1), 1, /*earliest=*/1000);
    EXPECT_GE(result.start, 1000u);
    EXPECT_GT(result.done, 1000u);
}

TEST(Scheduler, AfterDependencyBoundsStartAcrossHandles)
{
    // Two handles on disjoint tiles would normally overlap at cycle
    // 0; an `after` dependency serializes them: the dependent MVM
    // starts no earlier than the dependency's completion. Values
    // stay bit-exact either way.
    const MatrixI m_a = randomMatrix(8, 8, -2, 2, 530);
    const MatrixI m_b = randomMatrix(8, 8, -2, 2, 531);
    const std::vector<i64> x(8, 1);

    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a = session.setMatrix(m_a, 2, 0);
    const MatrixHandle b = session.setMatrix(m_b, 2, 0);

    const MvmFuture fa = session.submit(a, x, 2);
    const MvmFuture fb = session.submit(b, x, 2, 0, {fa});
    const auto ra = session.wait(fa);
    const auto rb = session.wait(fb);
    EXPECT_EQ(ra.start, 0u);
    EXPECT_GE(rb.start, ra.done);
    EXPECT_EQ(ra.values, reference(m_a, x));
    EXPECT_EQ(rb.values, reference(m_b, x));

    // Control: without the dependency both placements start at 0.
    Chip free_chip(smallChip(2));
    Runtime free_rt(free_chip);
    Session free_session = free_rt.createSession();
    const MatrixHandle fa2 = free_session.setMatrix(m_a, 2, 0);
    const MatrixHandle fb2 = free_session.setMatrix(m_b, 2, 0);
    (void)free_session.submit(fa2, x, 2);
    const MvmFuture overlap = free_session.submit(fb2, x, 2);
    EXPECT_EQ(free_session.wait(overlap).start, 0u);
}

TEST(Scheduler, AfterChainDrainsDeterministically)
{
    // A three-stage chain across distinct handles, combined with an
    // `earliest` bound on the head: waiting only the tail must first
    // execute the chain in dependency order, and every link's start
    // clears its predecessor's done cycle.
    const MatrixI m_a = randomMatrix(8, 8, -1, 1, 532);
    const MatrixI m_b = randomMatrix(8, 8, -1, 1, 533);
    const MatrixI m_c = randomMatrix(8, 8, -1, 1, 534);
    const std::vector<i64> x(8, 1);

    Chip chip(smallChip(3));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a = session.setMatrix(m_a, 1, 0);
    const MatrixHandle b = session.setMatrix(m_b, 1, 0);
    const MatrixHandle c = session.setMatrix(m_c, 1, 0);

    const MvmFuture fa =
        session.submit(a, x, 1, /*earliest=*/500);
    const MvmFuture fb = session.submit(b, x, 1, 0, {fa});
    const MvmFuture fc = session.submit(c, x, 1, 0, {fb});

    // Resolving the tail drains the chain (dependency-ready requests
    // only), leaving the earlier results collectable.
    const auto rc = session.wait(fc);
    EXPECT_EQ(rt.scheduler().pendingCount(), 0u);
    const auto ra = session.wait(fa);
    const auto rb = session.wait(fb);
    EXPECT_GE(ra.start, 500u);
    EXPECT_GE(rb.start, ra.done);
    EXPECT_GE(rc.start, rb.done);
    EXPECT_EQ(rc.values, reference(m_c, x));
}

TEST(Scheduler, AfterRejectsInvalidFutures)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, 0, 1, 535);
    const MatrixHandle handle = session.setMatrix(m, 1, 0);
    EXPECT_THROW(session.submit(handle, std::vector<i64>(8, 1), 1, 0,
                                {MvmFuture{}}),
                 std::invalid_argument);
    // A caught validation throw must not desynchronize request ids
    // from the dependency bookkeeping: later submits and dependency
    // chains keep working.
    const std::vector<i64> x(8, 1);
    const MvmFuture fa = session.submit(handle, x, 1);
    const MvmFuture fb = session.submit(handle, x, 1, 0, {fa});
    const auto ra = session.wait(fa);
    const auto rb = session.wait(fb);
    EXPECT_GE(rb.start, ra.done);
    EXPECT_EQ(rb.values, reference(m, x));
}

TEST(Scheduler, AfterRejectsForeignSchedulerFutures)
{
    // Ids are per-scheduler; a future issued by another chip's
    // scheduler must be rejected, not silently bound to whatever
    // local request shares the id.
    Chip chip_a(smallChip(1)), chip_b(smallChip(1));
    Runtime rt_a(chip_a), rt_b(chip_b);
    Session sa = rt_a.createSession();
    Session sb = rt_b.createSession();
    const MatrixHandle ha =
        sa.setMatrix(randomMatrix(8, 8, 0, 1, 540), 1, 0);
    const MatrixHandle hb =
        sb.setMatrix(randomMatrix(8, 8, 0, 1, 541), 1, 0);
    const MvmFuture foreign =
        sa.submit(ha, std::vector<i64>(8, 1), 1);
    EXPECT_THROW(sb.submit(hb, std::vector<i64>(8, 1), 1, 0,
                           {foreign}),
                 std::invalid_argument);
    sa.waitAll();
}

TEST(Scheduler, CountersTrackPipelineHitsAndDependencyStalls)
{
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 536), 1, 0);
    const MatrixHandle b =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 537), 1, 0);
    const std::vector<i64> x(8, 1);

    // Three back-to-back MVMs on one placement: the second and third
    // pipeline into the running stream.
    MvmFuture last_a;
    for (int i = 0; i < 3; ++i)
        last_a = session.submit(a, x, 1);
    session.waitAll();
    EXPECT_EQ(rt.scheduler().counters().issued, 3u);
    EXPECT_EQ(rt.scheduler().counters().pipelineHits, 2u);
    EXPECT_EQ(rt.scheduler().counters().dependencyStalls, 0u);

    // A dependent MVM on an idle tile: only the dependency delays it.
    const MvmFuture fb = session.submit(b, x, 1, 0, {last_a});
    (void)session.wait(fb);
    EXPECT_EQ(rt.scheduler().counters().issued, 4u);
    EXPECT_EQ(rt.scheduler().counters().dependencyStalls, 1u);
}

TEST(Scheduler, QueuedRequestViewCarriesOracleCostAndReadiness)
{
    const auto cfg = smallChip(2);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 538), 1, 0);
    const MatrixHandle b =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 539), 1, 0);

    // Capture the queue view the first time the hook fires, then
    // fall back to the greedy order (out-of-range pick).
    std::vector<QueuedRequest> seen;
    rt.scheduler().setDequeueHook(
        [&seen](const std::vector<QueuedRequest> &queue) {
            if (seen.empty())
                seen = queue;
            return queue.size();
        });

    const MvmFuture fa = session.submit(a, std::vector<i64>(8, 1), 2);
    (void)session.submit(b, std::vector<i64>(8, 1), 2, 0, {fa});
    session.waitAll();

    ASSERT_EQ(seen.size(), 2u);
    // The dependency-free request is ready; the dependent one is not
    // until its dependency executes.
    EXPECT_TRUE(seen[0].ready);
    EXPECT_FALSE(seen[1].ready);
    // Both carry the KernelModel oracle latency of their shape.
    KernelModel km(cfg.hct);
    const Cycle oracle = km.mvm(MvmShape{8, 8, 1, 1, 2}).latency;
    EXPECT_EQ(seen[0].oracleCost, oracle);
    EXPECT_EQ(seen[1].oracleCost, oracle);
}

TEST(Scheduler, BacklogCyclesTracksQueuedOracleWork)
{
    // backlogCycles is queue pressure in cycles: the summed oracle
    // latency of unexecuted requests, falling as the queue drains —
    // the load term of the pool's CostAware placement.
    const ChipConfig cfg = smallChip(1);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, -2, 2, 520);
    const MatrixHandle handle = session.setMatrix(m, 2, 0);

    EXPECT_EQ(rt.scheduler().backlogCycles(), 0u);
    const Cycle oracle =
        rt.scheduler().oracleCost(handle.plan(), 3);
    ASSERT_GT(oracle, 0u);

    std::vector<MvmFuture> futures;
    for (int i = 0; i < 3; ++i)
        futures.push_back(
            session.submit(handle, std::vector<i64>(8, 1), 3));
    EXPECT_EQ(rt.scheduler().backlogCycles(), 3 * oracle);

    // Waiting one future drains it (and everything the greedy order
    // executes first); the backlog shrinks accordingly.
    (void)session.wait(futures[0]);
    EXPECT_LT(rt.scheduler().backlogCycles(), 3 * oracle);
    session.waitAll();
    EXPECT_EQ(rt.scheduler().backlogCycles(), 0u);
}

} // namespace
} // namespace runtime
} // namespace darth
