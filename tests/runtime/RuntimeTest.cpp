/**
 * @file
 * Tests for the Chip, placement planner, and session-based runtime
 * calls.
 */

#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "common/Random.h"
#include "runtime/Runtime.h"

namespace darth
{
namespace runtime
{
namespace
{

ChipConfig
smallChip(std::size_t num_hcts = 4)
{
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, i64 lo, i64 hi,
             u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(lo, hi);
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

TEST(Chip, ConstructsTiles)
{
    Chip chip(smallChip(3));
    EXPECT_EQ(chip.numHcts(), 3u);
    EXPECT_EQ(chip.modeledHcts(), 3u);
}

TEST(Chip, ModeledHctsOverride)
{
    ChipConfig cfg = smallChip(2);
    cfg.modeledHcts = 1860;
    Chip chip(cfg);
    EXPECT_EQ(chip.numHcts(), 2u);
    EXPECT_EQ(chip.modeledHcts(), 1860u);
}

TEST(Runtime, PrecisionScale)
{
    EXPECT_EQ(Runtime::precisionToBitsPerCell(0), 1);
    EXPECT_EQ(Runtime::precisionToBitsPerCell(1), 2);
    EXPECT_EQ(Runtime::precisionToBitsPerCell(2), 4);
    EXPECT_EQ(Runtime::precisionToBitsPerCell(1, 8), 4);
    EXPECT_THROW((void)Runtime::precisionToBitsPerCell(3),
                 std::runtime_error);
}

TEST(Runtime, PlanSinglePart)
{
    const auto plan = Runtime::planMatrix(smallChip().hct, 8, 8, 1, 1);
    ASSERT_EQ(plan.parts.size(), 1u);
    EXPECT_FALSE(plan.rowSplit);
    EXPECT_EQ(plan.parts[0].numRows, 8u);
    EXPECT_EQ(plan.parts[0].numCols, 8u);
}

TEST(Runtime, PlanColumnStripes)
{
    // 8 rows fit one tile; 32 cols need 4 col tiles; cap = 8 arrays
    // -> 8 tiles per HCT covers 1 row tile x 8 col tiles, so a
    // single part suffices. Shrink capacity by using 2 slices.
    const auto plan = Runtime::planMatrix(smallChip().hct, 8, 32, 2, 1);
    EXPECT_FALSE(plan.rowSplit);
    ASSERT_GE(plan.parts.size(), 1u);
    std::size_t covered = 0;
    for (const auto &part : plan.parts) {
        EXPECT_EQ(part.numRows, 8u);
        covered += part.numCols;
    }
    EXPECT_EQ(covered, 32u);
}

TEST(Runtime, PlanRowSplitWhenRowsExceedCapacity)
{
    // 8 arrays, 1 slice, 8 rows/tile -> 64 rows per HCT max; 100
    // rows forces a row split.
    const auto plan =
        Runtime::planMatrix(smallChip().hct, 100, 8, 1, 1);
    EXPECT_TRUE(plan.rowSplit);
    EXPECT_GE(plan.parts.size(), 2u);
    std::size_t rows_covered = 0;
    for (const auto &part : plan.parts)
        if (part.col0 == 0)
            rows_covered += part.numRows;
    EXPECT_EQ(rows_covered, 100u);
}

TEST(Runtime, ExecMvmSinglePartExact)
{
    Chip chip(smallChip());
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, -1, 1, 211);
    const MatrixHandle handle = session.setMatrix(m, 1, 0);
    Rng rng(212);
    std::vector<i64> x(8);
    for (auto &v : x)
        v = rng.uniformInt(i64{0}, i64{7});
    const auto result = session.execMVM(handle, x, 3);
    EXPECT_EQ(result.values, reference(m, x));
    EXPECT_GT(result.done, 0u);
}

TEST(Runtime, ExecMvmColumnStripesExact)
{
    Chip chip(smallChip(4));
    Runtime rt(chip);
    Session session = rt.createSession();
    // 2 slices halve capacity: 8 rows x 32 cols may need > 1 part.
    const MatrixI m = randomMatrix(8, 32, -3, 3, 213);
    const MatrixHandle handle = session.setMatrix(m, 2, 0);
    std::vector<i64> x(8, 1);
    const auto result = session.execMVM(handle, x, 2);
    EXPECT_EQ(result.values, reference(m, x));
}

TEST(Runtime, ExecMvmRowSplitExact)
{
    Chip chip(smallChip(8));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(100, 8, -1, 1, 214);
    const MatrixHandle handle = session.setMatrix(m, 1, 0);
    ASSERT_TRUE(handle.plan().rowSplit);
    Rng rng(215);
    std::vector<i64> x(100);
    for (auto &v : x)
        v = rng.uniformInt(i64{0}, i64{3});
    const auto result = session.execMVM(handle, x, 2);
    EXPECT_EQ(result.values, reference(m, x));
}

TEST(Runtime, RowSplitTallMatrixBitExactAcrossShapes)
{
    // A matrix taller than one HCT (64 rows at this geometry) must
    // produce rowSplit plans whose cross-part adds are bit-exact
    // against the integer reference, including signed inputs and
    // multi-column-stripe shapes.
    for (const std::size_t rows : {65u, 96u, 130u}) {
        Chip chip(smallChip(16));
        Runtime rt(chip);
        Session session = rt.createSession();
        const MatrixI m = randomMatrix(rows, 16, -3, 3,
                                       300 + rows);
        const MatrixHandle handle = session.setMatrix(m, 2, 0);
        ASSERT_TRUE(handle.plan().rowSplit)
            << rows << " rows should not fit one HCT";
        Rng rng(400 + rows);
        std::vector<i64> x(rows);
        for (auto &v : x)
            v = rng.uniformInt(i64{-4}, i64{3});
        const auto result = session.execMVM(handle, x, 3);
        EXPECT_EQ(result.values, reference(m, x))
            << "row-split mismatch at " << rows << " rows";
    }
}

TEST(Runtime, TwoMatricesUseDistinctHcts)
{
    Chip chip(smallChip(4));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 216), 1, 0);
    const MatrixHandle b =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 217), 1, 0);
    EXPECT_NE(a.plan().parts[0].hctIndex, b.plan().parts[0].hctIndex);
    // Both matrices stay usable.
    std::vector<i64> x(8, 1);
    EXPECT_EQ(session.execMVM(a, x, 1).values,
              reference(a.matrix(), x));
    EXPECT_EQ(session.execMVM(b, x, 1).values,
              reference(b.matrix(), x));
}

TEST(Runtime, OutOfHctsIsFatal)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle held =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 218), 1, 0);
    EXPECT_THROW(session.setMatrix(randomMatrix(8, 8, 0, 1, 219), 1, 0),
                 std::runtime_error);
    EXPECT_TRUE(held.valid());
}

TEST(Runtime, FreeMatrixReclaimsHcts)
{
    // The seed leaked placements forever; released handles must
    // return their tiles to the free pool.
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    EXPECT_EQ(rt.freeHcts(), 1u);
    {
        const MatrixHandle handle =
            session.setMatrix(randomMatrix(8, 8, 0, 1, 220), 1, 0);
        EXPECT_EQ(rt.freeHcts(), 0u);
    }
    EXPECT_EQ(rt.freeHcts(), 1u);
    // The reclaimed tile is reusable, and the new placement works.
    const MatrixI m = randomMatrix(8, 8, -1, 1, 221);
    const MatrixHandle again = session.setMatrix(m, 1, 0);
    std::vector<i64> x(8, 1);
    EXPECT_EQ(session.execMVM(again, x, 1).values, reference(m, x));
}

TEST(Runtime, PlacementCursorSkipsOccupiedHcts)
{
    Chip chip(smallChip(3));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 222), 1, 0);
    MatrixHandle b = session.setMatrix(randomMatrix(8, 8, 0, 1, 223),
                                       1, 0);
    const MatrixHandle c =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 224), 1, 0);
    EXPECT_EQ(rt.freeHcts(), 0u);
    // Free the middle tile; the cursor (wrapped back to tile 0,
    // which is still fully allocated) must skip it and land on the
    // reclaimed tile.
    const std::size_t freed = b.plan().parts[0].hctIndex;
    b.release();
    const MatrixHandle d =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 225), 1, 0);
    EXPECT_EQ(d.plan().parts[0].hctIndex, freed);
    EXPECT_NE(d.plan().parts[0].hctIndex,
              a.plan().parts[0].hctIndex);
    EXPECT_NE(d.plan().parts[0].hctIndex,
              c.plan().parts[0].hctIndex);
}

TEST(Runtime, MvmInputLengthMismatchThrowsInvalidArgument)
{
    Chip chip(smallChip());
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 226), 1, 0);
    // Too short and too long both throw std::invalid_argument (not a
    // silent truncation / out-of-bounds read).
    EXPECT_THROW(session.submit(handle, std::vector<i64>(7, 1), 1),
                 std::invalid_argument);
    EXPECT_THROW(session.submit(handle, std::vector<i64>(9, 1), 1),
                 std::invalid_argument);
    try {
        session.submit(handle, std::vector<i64>(3, 1), 1);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("3 elements"), std::string::npos) << msg;
        EXPECT_NE(msg.find("8 rows"), std::string::npos) << msg;
    }
    EXPECT_THROW(session.submit(handle, std::vector<i64>(8, 1), 0),
                 std::invalid_argument);
    // The handle still works after the rejected submissions.
    std::vector<i64> x(8, 1);
    EXPECT_EQ(session.execMVM(handle, x, 1).values,
              reference(handle.matrix(), x));
}

TEST(Runtime, UpdateRowPropagates)
{
    Chip chip(smallChip());
    Runtime rt(chip);
    Session session = rt.createSession();
    MatrixI m(4, 4, 0);
    const MatrixHandle handle = session.setMatrix(m, 1, 0);
    rt.updateRow(handle.id(), 2, {1, 1, 1, 1});
    std::vector<i64> x = {0, 0, 1, 0};
    EXPECT_EQ(session.execMVM(handle, x, 1).values,
              (std::vector<i64>{1, 1, 1, 1}));
}

TEST(Runtime, UpdateColPropagates)
{
    Chip chip(smallChip());
    Runtime rt(chip);
    Session session = rt.createSession();
    MatrixI m(4, 4, 0);
    const MatrixHandle handle = session.setMatrix(m, 1, 0);
    rt.updateCol(handle.id(), 1, {1, 0, 1, 0});
    std::vector<i64> x = {1, 1, 1, 1};
    EXPECT_EQ(session.execMVM(handle, x, 1).values,
              (std::vector<i64>{0, 2, 0, 0}));
}

TEST(Runtime, DisableAnalogModeBlocksMvm)
{
    Chip chip(smallChip());
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 227), 1, 0);
    rt.disableAnalogMode(handle.id(), 0);
    EXPECT_THROW((void)session.submit(handle, std::vector<i64>(8, 1),
                                      1),
                 std::runtime_error);
}

TEST(Runtime, PlaceAndFreeMatrixDirectly)
{
    // The registry-level API (used by the serving layer and by
    // Session internally) places and reclaims without a session
    // object.
    Chip chip(smallChip(1));
    Runtime rt(chip);
    const int handle =
        rt.placeMatrix(randomMatrix(8, 8, 0, 1, 230), 1, 1);
    EXPECT_EQ(rt.freeHcts(), 0u);
    rt.freeMatrix(handle);
    EXPECT_EQ(rt.freeHcts(), 1u);
    EXPECT_THROW((void)rt.plan(handle), std::runtime_error);
}

TEST(Runtime, ReleasedSessionRejectsUse)
{
    // Submitting through a released (moved-from) session must throw
    // std::invalid_argument at the call site, not be silently
    // accepted (or crash) until a wait.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 0, 1, 231), 1, 0);
    const MvmFuture pending =
        session.submit(handle, std::vector<i64>(8, 1), 1);
    Session moved = std::move(session);
    EXPECT_THROW(session.submit(handle, std::vector<i64>(8, 1), 1),
                 std::invalid_argument);
    EXPECT_THROW((void)session.wait(pending), std::invalid_argument);
    EXPECT_THROW(session.waitAll(), std::invalid_argument);
    EXPECT_THROW(session.setMatrix(randomMatrix(8, 8, 0, 1, 232), 1, 0),
                 std::invalid_argument);
    // The moved-to session carries on: same id, same queued work.
    EXPECT_EQ(moved.wait(pending).values,
              reference(handle.matrix(), std::vector<i64>(8, 1)));
}

TEST(KernelModel, MvmCostMatchesHct)
{
    // The oracle must report exactly what the simulator measures.
    const auto cfg = smallChip().hct;
    KernelModel km(cfg);
    const MvmShape shape{8, 8, 2, 1, 3};
    const auto cost = km.mvm(shape);

    CostTally tally;
    hct::Hct hct(cfg, &tally, 1);
    hct.setMatrix(randomMatrix(8, 8, -3, 3, 221), 2, 1);
    const auto measured =
        hct.execMvm(std::vector<i64>(8, 1), 3, 0);
    EXPECT_EQ(cost.latency, measured.done);
    EXPECT_GT(cost.energy, 0.0);
}

TEST(KernelModel, CachesShapes)
{
    KernelModel km(smallChip().hct);
    const MvmShape shape{8, 8, 1, 1, 1};
    const auto a = km.mvm(shape);
    const auto b = km.mvm(shape);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.energy, b.energy);
}

TEST(KernelModel, AmortizedLeqLatency)
{
    KernelModel km(smallChip().hct);
    const auto mvm = km.mvm(MvmShape{8, 8, 2, 1, 4});
    EXPECT_LE(mvm.amortized, mvm.latency);
    const auto add = km.macro(digital::MacroKind::Add, 16);
    EXPECT_LE(add.amortized, add.latency);
    EXPECT_GT(add.latency, 0u);
}

TEST(KernelModel, MultiplyScalesWithBits)
{
    KernelModel km(smallChip().hct);
    const auto m8 = km.multiply(8);
    const auto m4 = km.multiply(4);
    EXPECT_GT(m8.latency, m4.latency);
    EXPECT_GT(m8.energy, m4.energy);
}

TEST(KernelModel, ElementLoadAndRowIo)
{
    KernelModel km(smallChip().hct);
    EXPECT_EQ(km.elementLoad(8).latency, 3u * 8u);
    EXPECT_EQ(km.rowIo(5).latency, 5u);
}

} // namespace
} // namespace runtime
} // namespace darth
