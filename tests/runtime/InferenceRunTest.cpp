/**
 * @file
 * Tests for the incremental InferenceRun handle: planned steps
 * submit one at a time under per-step admission bounds, stages of
 * distinct runs interleave on one chip with bit-identical outputs,
 * and the staged TinyCnn / ResNet-20 / encoder forwards match their
 * reference networks exactly.
 */

#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "apps/cnn/CnnMapper.h"
#include "apps/cnn/Resnet20.h"
#include "apps/cnn/TinyCnn.h"
#include "apps/llm/Encoder.h"
#include "apps/llm/LlmMapper.h"
#include "common/Random.h"
#include "runtime/InferenceGraph.h"
#include "runtime/Runtime.h"

namespace darth
{
namespace runtime
{
namespace
{

ChipConfig
smallChip(std::size_t num_hcts = 2)
{
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

/** The infer_bench TinyCnn / serving CnnInfer chip geometry. */
ChipConfig
inferChip(std::size_t num_hcts)
{
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 2;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 32;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 16;
    cfg.hct.ace.arrayRows = 64;
    cfg.hct.ace.arrayCols = 32;
    cfg.numHcts = num_hcts;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(i64{-2}, i64{2});
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

TEST(InferenceRun, StepsSubmitIncrementallyUnderAdmissionBounds)
{
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI a = randomMatrix(8, 8, 701);
    const MatrixI b = randomMatrix(8, 8, 702);
    const MatrixHandle ha = session.setMatrix(a, 2, 0);
    const MatrixHandle hb = session.setMatrix(b, 2, 0);

    // A two-step run: stream against `a`, then feed its output into
    // a stream against `b` — the data dependency a model forward
    // has between layers.
    struct Ctx
    {
        StageId s1 = 0;
        std::vector<i64> mid;
    };
    auto ctx = std::make_shared<Ctx>();
    const std::vector<i64> x(8, 1);

    InferenceRun run(session, /*ready=*/100);
    EXPECT_EQ(run.graph().stageCount(), 1u);   // the root source
    run.addStep("first", 10,
                [&, ctx](InferenceRun &r, StageId admit) {
                    ctx->s1 = r.graph().addMvmStream("a", ha, {x}, 3,
                                                     {admit});
                    ctx->mid = r.graph().outputs(ctx->s1)[0];
                });
    run.addStep("second", 20,
                [&, ctx](InferenceRun &r, StageId admit) {
                    const StageId s2 = r.graph().addMvmStream(
                        "b", hb, {ctx->mid}, 6, {ctx->s1, admit});
                    r.setOutput(r.graph().outputs(s2)[0]);
                });

    EXPECT_EQ(run.stepCount(), 2u);
    EXPECT_EQ(run.stepNominal(0), 10u);
    EXPECT_EQ(run.stepNominal(1), 20u);
    EXPECT_EQ(run.stepName(1), "second");
    EXPECT_FALSE(run.finished());

    // Steps not yet submitted cannot report completion.
    EXPECT_THROW((void)run.stepDone(0), std::invalid_argument);
    EXPECT_THROW((void)run.finish(), std::invalid_argument);

    EXPECT_EQ(run.submitNext(100), 0u);
    const Cycle first_done = run.stepDone(0);
    EXPECT_GT(first_done, 100u);

    // The second step is admitted far later: its admission source
    // must push its stages past the bound.
    const Cycle late = first_done + 5000;
    EXPECT_EQ(run.submitNext(late), 1u);
    EXPECT_TRUE(run.finished());
    EXPECT_GT(run.stepDone(1), late);
    EXPECT_THROW((void)run.submitNext(late), std::invalid_argument);

    const GraphStats stats = run.finish();
    EXPECT_EQ(stats.done, run.stepDone(1));
    EXPECT_EQ(stats.mvmCount, 2u);
    EXPECT_EQ(run.output(), reference(b, reference(a, x)));
}

TEST(InferenceRun, InterleavedTinyCnnRunsStayBitIdentical)
{
    // Two staged forwards against one runner (shared placements)
    // advance alternately — request B's stages submit between
    // request A's — and both logits match the reference network.
    const ChipConfig cfg = inferChip(3);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();

    cnn::TinyCnn net(11);
    cnn::CnnMapper mapper(cfg.hct);
    cnn::TinyCnnForward fwd(session, net, mapper);

    Rng rng(77);
    cnn::Tensor in_a(1, 8, 8), in_b(1, 8, 8);
    for (std::size_t i = 0; i < in_a.size(); ++i) {
        in_a.data()[i] =
            static_cast<i32>(rng.uniformInt(i64{-8}, i64{7}));
        in_b.data()[i] =
            static_cast<i32>(rng.uniformInt(i64{-8}, i64{7}));
    }

    auto run_a = fwd.begin(in_a, 0);
    auto run_b = fwd.begin(in_b, 50);
    ASSERT_EQ(run_a->stepCount(), 3u);
    for (std::size_t i = 0; i < run_a->stepCount(); ++i)
        EXPECT_GT(run_a->stepNominal(i), 0u) << "step " << i;

    Cycle at = 0;
    while (!run_a->finished() || !run_b->finished()) {
        if (!run_a->finished())
            run_a->submitNext(at);
        if (!run_b->finished())
            run_b->submitNext(at + 50);
        at += 1000;
    }
    (void)run_a->finish();
    (void)run_b->finish();
    EXPECT_EQ(run_a->output(), net.infer(in_a));
    EXPECT_EQ(run_b->output(), net.infer(in_b));

    // The alternating submission interleaved two same-placement
    // streams on the chip scheduler.
    EXPECT_GT(rt.scheduler().counters().issued, 0u);
}

TEST(InferenceRun, StagedResnetForwardMatchesReference)
{
    // The infer_bench ResNet-20 geometry: one beefy tile per layer.
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 2;
    cfg.hct.dce.pipeline.depth = 64;
    cfg.hct.dce.pipeline.width = 64;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 64;
    cfg.hct.ace.arrayRows = 128;
    cfg.hct.ace.arrayCols = 64;
    cfg.numHcts = 22;

    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();
    cnn::Resnet20 net(42);
    cnn::CnnMapper mapper(cfg.hct);
    cnn::ResnetForward fwd(session, net, mapper);

    const cnn::Tensor input = cnn::syntheticInput(9);
    auto run = fwd.begin(input, 0);
    // conv1 + 9 residual blocks + fc.
    ASSERT_EQ(run->stepCount(), 11u);
    Cycle at = 0;
    std::size_t steps = 0;
    while (!run->finished()) {
        // Staggered admission cycles: each stage is admitted later
        // than pure dataflow would allow, as under a busy window.
        run->submitNext(at);
        at = run->stepDone(steps++) + 200;
    }
    (void)run->finish();
    EXPECT_EQ(run->output(), net.infer(input));
}

TEST(InferenceRun, StagedEncoderForwardMatchesReference)
{
    // The serving LlmInfer geometry (TrafficGen::llmInferConfig).
    const ChipConfig cfg = inferChip(6);
    Chip chip(cfg);
    Runtime rt(chip);
    Session session = rt.createSession();

    llm::EncoderConfig enc_cfg;
    enc_cfg.seqLen = 4;
    enc_cfg.dModel = 32;
    enc_cfg.numHeads = 2;
    enc_cfg.dFf = 64;
    llm::Encoder enc(enc_cfg, 7);
    llm::LlmMapper mapper(cfg.hct, 8, 2, 12);
    llm::EncoderForward fwd(session, enc, mapper);

    const MatrixI tokens = llm::syntheticTokens(enc_cfg, 5);
    auto run = fwd.begin(tokens, 0);
    ASSERT_EQ(run->stepCount(), 4u);   // qkv, attn-wo, ffn1, ffn2
    Cycle at = 0;
    std::size_t steps = 0;
    while (!run->finished()) {
        run->submitNext(at);
        at = run->stepDone(steps++) + 500;
    }
    (void)run->finish();

    const MatrixI want = enc.forward(tokens);
    const std::vector<i64> &flat = run->output();
    ASSERT_EQ(flat.size(), want.rows() * want.cols());
    for (std::size_t t = 0; t < want.rows(); ++t)
        for (std::size_t c = 0; c < want.cols(); ++c)
            EXPECT_EQ(flat[t * want.cols() + c], want(t, c))
                << "token " << t << " dim " << c;
}

} // namespace
} // namespace runtime
} // namespace darth
