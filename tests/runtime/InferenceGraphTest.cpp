/**
 * @file
 * Tests for the InferenceGraph subsystem: dataflow edges become
 * scheduler dependencies, digital stages charge oracle cycles, and
 * sources bound whole forwards.
 */

#include <stdexcept>

#include <gtest/gtest.h>

#include "common/Random.h"
#include "runtime/InferenceGraph.h"
#include "runtime/Runtime.h"

namespace darth
{
namespace runtime
{
namespace
{

ChipConfig
smallChip(std::size_t num_hcts = 2)
{
    ChipConfig cfg;
    cfg.hct.dce.numPipelines = 4;
    cfg.hct.dce.pipeline.depth = 32;
    cfg.hct.dce.pipeline.width = 8;
    cfg.hct.dce.pipeline.numRegs = 8;
    cfg.hct.ace.numArrays = 8;
    cfg.hct.ace.arrayRows = 16;   // 8 signed rows per array
    cfg.hct.ace.arrayCols = 8;
    cfg.numHcts = num_hcts;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(i64{-2}, i64{2});
    return m;
}

std::vector<i64>
reference(const MatrixI &m, const std::vector<i64> &x)
{
    std::vector<i64> out(m.cols(), 0);
    for (std::size_t c = 0; c < m.cols(); ++c)
        for (std::size_t r = 0; r < m.rows(); ++r)
            out[c] += m(r, c) * x[r];
    return out;
}

TEST(InferenceGraph, StreamOutputsMatchReference)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixI m = randomMatrix(8, 8, 601);
    const MatrixHandle handle = session.setMatrix(m, 2, 0);

    InferenceGraph graph(session);
    std::vector<std::vector<i64>> inputs(4, std::vector<i64>(8, 1));
    inputs[1][0] = -2;
    inputs[2][5] = 3;
    const StageId stage =
        graph.addMvmStream("s", handle, inputs, 3, {});
    const auto &outputs = graph.outputs(stage);
    ASSERT_EQ(outputs.size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(outputs[i], reference(m, inputs[i])) << "MVM " << i;
    EXPECT_EQ(graph.mvmCount(), 4u);
}

TEST(InferenceGraph, SourceBoundsTheForward)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 602), 2, 0);

    InferenceGraph graph(session);
    const StageId source = graph.addSource(5000);
    const StageId stage = graph.addMvmStream(
        "s", handle, {std::vector<i64>(8, 1)}, 2, {source});
    const GraphStats stats = graph.finish();
    EXPECT_GE(stats.start, 5000u);
    EXPECT_GT(stats.done, 5000u);
    EXPECT_EQ(graph.doneCycle(stage), stats.done);
}

TEST(InferenceGraph, DigitalStageChargesCyclesAfterDeps)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 603), 2, 0);

    InferenceGraph graph(session);
    const StageId stream = graph.addMvmStream(
        "s", handle, {std::vector<i64>(8, 1)}, 2, {});
    const Cycle stream_done = graph.doneCycle(stream);
    const StageId digital = graph.addDigital("epi", 123, {stream});
    EXPECT_EQ(graph.doneCycle(digital), stream_done + 123);
    // A second digital stage chains off the first.
    const StageId digital2 = graph.addDigital("epi2", 7, {digital});
    EXPECT_EQ(graph.doneCycle(digital2), stream_done + 123 + 7);
}

TEST(InferenceGraph, StreamAfterStreamSerializesViaAfterFutures)
{
    // Two streams on disjoint tiles with a graph edge between them:
    // the consumer's MVMs carry `after` futures, so they start only
    // once the producer completes — even though the tiles themselves
    // would have been free at cycle 0.
    Chip chip(smallChip(2));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle a =
        session.setMatrix(randomMatrix(8, 8, 604), 2, 0);
    const MatrixHandle b =
        session.setMatrix(randomMatrix(8, 8, 605), 2, 0);

    InferenceGraph graph(session);
    const StageId sa = graph.addMvmStream(
        "a", a, std::vector<std::vector<i64>>(3,
                                              std::vector<i64>(8, 1)),
        2, {});
    // Dependent stream added while `a` is still in flight.
    const StageId sb = graph.addMvmStream(
        "b", b, {std::vector<i64>(8, 1)}, 2, {sa});
    const Cycle a_done = graph.doneCycle(sa);
    const GraphStats stats = graph.finish();
    (void)sb;
    EXPECT_GE(stats.done, a_done);
    // b started after a completed (the dependency, not contention).
    EXPECT_GT(rt.scheduler().counters().dependencyStalls, 0u);
}

TEST(InferenceGraph, InvalidUsesThrow)
{
    Chip chip(smallChip(1));
    Runtime rt(chip);
    Session session = rt.createSession();
    const MatrixHandle handle =
        session.setMatrix(randomMatrix(8, 8, 606), 2, 0);

    InferenceGraph graph(session);
    EXPECT_THROW(graph.addMvmStream("s", handle, {}, 2, {}),
                 std::invalid_argument);
    EXPECT_THROW(graph.addMvmStream(
                     "s", handle, {std::vector<i64>(8, 1)}, 2, {99}),
                 std::invalid_argument);
    const StageId source = graph.addSource(0);
    EXPECT_THROW((void)graph.outputs(source), std::invalid_argument);
    EXPECT_THROW(graph.addDigital("d", 1, {42}),
                 std::invalid_argument);
}

} // namespace
} // namespace runtime
} // namespace darth
