/**
 * @file
 * Collision safety of the cross-chip cost-memo key: siliconKey()
 * must separate any two HctConfigs that can disagree on a
 * measurement, because the process-wide memo shares KernelCost
 * entries between every KernelModel whose keys match. A missed field
 * would silently serve one chip flavor the other flavor's timings.
 */

#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "runtime/KernelModel.h"

namespace darth
{
namespace runtime
{
namespace
{

hct::HctConfig
baseConfig()
{
    return hct::HctConfig::paperDefault(analog::AdcKind::Sar);
}

/** One single-field perturbation of the base config. */
struct Tweak
{
    const char *name;
    std::function<void(hct::HctConfig &)> apply;
};

const std::vector<Tweak> &
tweaks()
{
    static const std::vector<Tweak> list = {
        {"dce.pipes", [](hct::HctConfig &c) { ++c.dce.numPipelines; }},
        {"pipe.depth",
         [](hct::HctConfig &c) { ++c.dce.pipeline.depth; }},
        {"pipe.width",
         [](hct::HctConfig &c) { ++c.dce.pipeline.width; }},
        {"pipe.family",
         [](hct::HctConfig &c) {
             c.dce.pipeline.family = digital::LogicFamilyKind::Ideal;
         }},
        {"pipe.opE",
         [](hct::HctConfig &c) { c.dce.pipeline.opEnergyPJ += 1e-9; }},
        {"ace.arrays", [](hct::HctConfig &c) { ++c.ace.numArrays; }},
        {"ace.rows", [](hct::HctConfig &c) { c.ace.arrayRows *= 2; }},
        {"ace.cols", [](hct::HctConfig &c) { c.ace.arrayCols *= 2; }},
        {"adc.kind",
         [](hct::HctConfig &c) {
             c.ace.adc.kind = analog::AdcKind::Ramp;
         }},
        {"adc.bits", [](hct::HctConfig &c) { ++c.ace.adc.bits; }},
        {"adc.sarLat", [](hct::HctConfig &c) { ++c.ace.adc.sarLatency; }},
        {"ace.adcs", [](hct::HctConfig &c) { ++c.ace.numAdcs; }},
        {"ace.dac", [](hct::HctConfig &c) { ++c.ace.dacApplyCycles; }},
        {"ace.settle", [](hct::HctConfig &c) { ++c.ace.settleCycles; }},
        // Noise fields gate the Crossbar snapshot fast path and RNG
        // draws — a key collision here would cross-contaminate noisy
        // and ideal silicon.
        {"noise.prog",
         [](hct::HctConfig &c) { c.ace.noise.programSigma = 0.01; }},
        {"noise.read",
         [](hct::HctConfig &c) { c.ace.noise.readSigma = 0.01; }},
        {"noise.stuck",
         [](hct::HctConfig &c) { c.ace.noise.stuckAtRate = 0.001; }},
        {"noise.wire",
         [](hct::HctConfig &c) { c.ace.noise.wireResistance = 0.1; }},
        {"shiftUnits",
         [](hct::HctConfig &c) { c.shiftUnits = !c.shiftUnits; }},
        {"iiu.on",
         [](hct::HctConfig &c) { c.iiu.enabled = !c.iiu.enabled; }},
        {"tp.on",
         [](hct::HctConfig &c) {
             c.transpose.enabled = !c.transpose.enabled;
         }},
        {"arb.switch",
         [](hct::HctConfig &c) { ++c.arbiterSwitchPenalty; }},
        {"net.bpc",
         [](hct::HctConfig &c) { c.networkBytesPerCycle *= 2; }},
        {"net.bE",
         [](hct::HctConfig &c) { c.networkEnergyPerBytePJ += 1e-9; }},
    };
    return list;
}

TEST(CostMemoKey, IdenticalConfigsShareOneKey)
{
    EXPECT_EQ(siliconKey(baseConfig(), 1), siliconKey(baseConfig(), 1));
}

TEST(CostMemoKey, SeedIsPartOfTheKey)
{
    // Measurements draw their probe matrices from the seed, so two
    // models with different seeds must never share memo entries.
    EXPECT_NE(siliconKey(baseConfig(), 1), siliconKey(baseConfig(), 2));
}

TEST(CostMemoKey, EverySingleFieldTweakChangesTheKey)
{
    const std::string base = siliconKey(baseConfig(), 1);
    std::set<std::string> seen;
    seen.insert(base);
    for (const Tweak &tweak : tweaks()) {
        hct::HctConfig cfg = baseConfig();
        tweak.apply(cfg);
        const std::string key = siliconKey(cfg, 1);
        EXPECT_NE(key, base) << "tweak " << tweak.name
                             << " collided with the base key";
        EXPECT_TRUE(seen.insert(key).second)
            << "tweak " << tweak.name
            << " collided with another tweak's key";
    }
}

TEST(CostMemoKey, TinyDoubleDeltasAreDistinct)
{
    // Doubles enter the key by bit pattern, so even one-ULP-scale
    // deltas must separate (no lossy decimal formatting).
    hct::HctConfig a = baseConfig();
    hct::HctConfig b = baseConfig();
    b.ace.noise.programSigma =
        a.ace.noise.programSigma + 1e-300;
    EXPECT_NE(siliconKey(a, 1), siliconKey(b, 1));
}

TEST(CostMemo, IdenticalSiliconSharesMeasurements)
{
    // Two independent models over the same silicon must agree
    // byte-for-byte on a measured cost — whichever measures first
    // publishes to the process-wide memo and the other reads it.
    hct::HctConfig cfg = baseConfig();
    cfg.dce.numPipelines = 2;
    cfg.ace.numArrays = 4;
    cfg.ace.arrayRows = 16;
    cfg.ace.arrayCols = 8;
    KernelModel first(cfg, 7);
    KernelModel second(cfg, 7);
    const KernelCost a = first.macro(digital::MacroKind::Add, 8);
    const KernelCost b = second.macro(digital::MacroKind::Add, 8);
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.amortized, b.amortized);
    EXPECT_EQ(a.energy, b.energy);

    MvmShape shape;
    shape.rows = 8;
    shape.cols = 8;
    shape.elementBits = 4;
    shape.bitsPerCell = 1;
    shape.inputBits = 4;
    const KernelCost ma = first.mvm(shape);
    const KernelCost mb = second.mvm(shape);
    EXPECT_EQ(ma.latency, mb.latency);
    EXPECT_EQ(ma.amortized, mb.amortized);
    EXPECT_EQ(ma.energy, mb.energy);
}

} // namespace
} // namespace runtime
} // namespace darth
