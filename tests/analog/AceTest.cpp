/**
 * @file
 * Unit tests for the Analog Compute Element: tiling, partial-product
 * streams, integer exactness in the ideal configuration, ADC rate
 * effects, and programming-cost accounting.
 */

#include <gtest/gtest.h>

#include "analog/Ace.h"
#include "common/Random.h"

namespace darth
{
namespace analog
{
namespace
{

AceConfig
smallAce()
{
    AceConfig cfg;
    cfg.numArrays = 16;
    cfg.arrayRows = 16;   // 8 signed rows per array
    cfg.arrayCols = 8;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, i64 lo, i64 hi,
             u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(lo, hi);
    return m;
}

TEST(Ace, SingleArrayFit)
{
    Ace ace(smallAce());
    ace.setMatrix(randomMatrix(8, 8, -1, 1, 1), 1, 1);
    EXPECT_EQ(ace.arraysUsed(), 1u);
    EXPECT_EQ(ace.slices(), 1);
    EXPECT_EQ(ace.rowTiles(), 1u);
    EXPECT_EQ(ace.colTiles(), 1u);
}

TEST(Ace, TilingAcrossArrays)
{
    Ace ace(smallAce());
    // 16 rows -> 2 row tiles; 16 cols -> 2 col tiles; 4-bit elements
    // at 2 bits per cell -> 2 slices. 2*2*2 = 8 arrays.
    ace.setMatrix(randomMatrix(16, 16, -15, 15, 2), 4, 2);
    EXPECT_EQ(ace.slices(), 2);
    EXPECT_EQ(ace.rowTiles(), 2u);
    EXPECT_EQ(ace.colTiles(), 2u);
    EXPECT_EQ(ace.arraysUsed(), 8u);
}

TEST(Ace, TooLargeMatrixIsFatal)
{
    Ace ace(smallAce());
    EXPECT_THROW(ace.setMatrix(randomMatrix(64, 64, -1, 1, 3), 8, 1),
                 std::runtime_error);
}

TEST(Ace, MvmExactUnsignedInputs)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(8, 8, -1, 1, 4);
    ace.setMatrix(m, 1, 1);
    Rng rng(5);
    std::vector<i64> x(8);
    for (auto &v : x)
        v = rng.uniformInt(i64{0}, i64{15});
    const auto stream = ace.execMvm(x, 4, 0);
    const auto reduced = Ace::reduceStream(stream, m.cols());
    EXPECT_EQ(reduced, ace.referenceMvm(x));
}

TEST(Ace, MvmExactSignedInputs)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(8, 8, -3, 3, 6);
    ace.setMatrix(m, 2, 2);
    Rng rng(7);
    std::vector<i64> x(8);
    for (auto &v : x)
        v = rng.uniformInt(i64{-8}, i64{7});
    const auto stream = ace.execMvm(x, 4, 0);
    const auto reduced = Ace::reduceStream(stream, m.cols());
    EXPECT_EQ(reduced, ace.referenceMvm(x));
}

TEST(Ace, MvmExactWithTilingAndSlicing)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(16, 16, -15, 15, 8);
    ace.setMatrix(m, 4, 2);
    Rng rng(9);
    std::vector<i64> x(16);
    for (auto &v : x)
        v = rng.uniformInt(i64{-4}, i64{3});
    const auto stream = ace.execMvm(x, 3, 0);
    const auto reduced = Ace::reduceStream(stream, m.cols());
    EXPECT_EQ(reduced, ace.referenceMvm(x));
}

TEST(Ace, RowGroupSplitWhenAdcTooNarrow)
{
    AceConfig cfg = smallAce();
    cfg.adc.bits = 4;   // max code 7
    Ace ace(cfg);
    // 2-bit cells (max code 3): 8 active rows accumulate up to 24,
    // beyond the 4-bit ADC -> rows must be split into groups of 2.
    const MatrixI m = randomMatrix(8, 4, -3, 3, 10);
    ace.setMatrix(m, 2, 2);
    EXPECT_EQ(ace.rowGroups(), 4u);
    // Exactness must survive the split.
    std::vector<i64> x(8);
    Rng rng(11);
    for (auto &v : x)
        v = rng.uniformInt(i64{0}, i64{3});
    const auto stream = ace.execMvm(x, 2, 0);
    EXPECT_EQ(Ace::reduceStream(stream, m.cols()), ace.referenceMvm(x));
}

TEST(AceDeath, CellWiderThanAdcIsFatal)
{
    AceConfig cfg = smallAce();
    cfg.adc.bits = 4;
    Ace ace(cfg);
    EXPECT_THROW(ace.setMatrix(randomMatrix(4, 4, -15, 15, 10), 4, 4),
                 std::runtime_error);
}

TEST(Ace, StreamSizeMatchesPlanesSlicesTilesGroups)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(16, 8, -3, 3, 12);
    ace.setMatrix(m, 2, 2);
    const auto stream = ace.execMvm(std::vector<i64>(16, 1), 3, 0);
    EXPECT_EQ(stream.size(), 3u * 1u * 2u * ace.rowGroups());
}

TEST(Ace, PartialShiftsCoverInputAndSliceWeights)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(8, 8, -15, 15, 13);
    ace.setMatrix(m, 4, 2);   // 2 slices, weights 0 and 2
    const auto stream = ace.execMvm(std::vector<i64>(8, 1), 2, 0);
    std::vector<int> shifts;
    for (const auto &pp : stream)
        shifts.push_back(pp.shift);
    // Input bits 0..1 and slice shifts 0, 2 -> shifts {0,1,2,3}.
    for (int expected : {0, 1, 2, 3})
        EXPECT_NE(std::find(shifts.begin(), shifts.end(), expected),
                  shifts.end());
}

TEST(Ace, AdcSerializationOrdersReadyTimes)
{
    Ace ace(smallAce());
    const MatrixI m = randomMatrix(16, 8, -1, 1, 14);
    ace.setMatrix(m, 1, 1);   // 2 row tiles -> 2 conversions per plane
    const auto stream = ace.execMvm(std::vector<i64>(16, 1), 2, 0);
    ASSERT_GE(stream.size(), 2u);
    for (std::size_t i = 1; i < stream.size(); ++i)
        EXPECT_GE(stream[i].readyAt, stream[i - 1].readyAt);
    EXPECT_GT(stream[0].readyAt, 0u);
}

TEST(Ace, RampAdcSlowerThanSarWithoutEarlyTermination)
{
    const MatrixI m = randomMatrix(8, 8, -1, 1, 15);
    AceConfig sar_cfg = smallAce();
    Ace sar(sar_cfg);
    sar.setMatrix(m, 1, 1);
    const auto sar_stream = sar.execMvm(std::vector<i64>(8, 1), 1, 0);

    AceConfig ramp_cfg = smallAce();
    ramp_cfg.adc.kind = AdcKind::Ramp;
    ramp_cfg.numAdcs = 1;
    Ace ramp(ramp_cfg);
    ramp.setMatrix(m, 1, 1);
    const auto ramp_stream = ramp.execMvm(std::vector<i64>(8, 1), 1, 0);

    EXPECT_GT(ramp_stream.back().readyAt, sar_stream.back().readyAt);
}

TEST(Ace, RampEarlyTerminationWins)
{
    // With the paper's 64 bitlines, 2 muxed SAR ADCs need 32 cycles
    // per plane while an early-terminated ramp sweeps all bitlines in
    // 4 (§7.3: AES MixColumns).
    AceConfig wide = smallAce();
    wide.arrayRows = 64;
    wide.arrayCols = 64;
    const MatrixI m = randomMatrix(32, 64, -1, 1, 16);

    AceConfig ramp_cfg = wide;
    ramp_cfg.adc.kind = AdcKind::Ramp;
    ramp_cfg.numAdcs = 1;
    ramp_cfg.rampStates = 4;   // the AES MixColumns trick
    Ace ramp(ramp_cfg);
    ramp.setMatrix(m, 1, 1);
    const auto ramp_stream =
        ramp.execMvm(std::vector<i64>(32, 1), 1, 0);

    Ace sar(wide);
    sar.setMatrix(m, 1, 1);
    const auto sar_stream = sar.execMvm(std::vector<i64>(32, 1), 1, 0);

    EXPECT_LT(ramp_stream.back().readyAt, sar_stream.back().readyAt);
}

TEST(Ace, RampAutoTerminationSweepsOnlyTheReachableRange)
{
    // Auto-termination derives the sweep length from the operating
    // point alone: a row group of rowsPerGroup 1-bit cells can only
    // produce codes in ±rowsPerGroup, so the sweep covers
    // 2*rowsPerGroup + 1 states instead of the full 256 — and the
    // values are bit-identical to the full sweep (early termination
    // changes when the ramp stops, never what it resolved).
    const MatrixI m = randomMatrix(8, 8, -1, 1, 17);
    AceConfig full_cfg = smallAce();
    full_cfg.adc.kind = AdcKind::Ramp;
    full_cfg.numAdcs = 1;
    Ace full(full_cfg);
    full.setMatrix(m, 1, 1);
    EXPECT_EQ(full.rampSweepStates(), 0u);

    AceConfig auto_cfg = full_cfg;
    auto_cfg.rampAutoTerminate = true;
    Ace aut(auto_cfg);
    aut.setMatrix(m, 1, 1);
    // smallAce: 16 physical rows = 8 signed rows per tile, 1-bit
    // cells, 8-bit ADC -> one group of 8 rows -> 17 states.
    EXPECT_EQ(aut.rampSweepStates(), 17u);

    const std::vector<i64> x(8, 1);
    const auto full_stream = full.execMvm(x, 1, 0);
    const auto auto_stream = aut.execMvm(x, 1, 0);
    ASSERT_EQ(full_stream.size(), auto_stream.size());
    for (std::size_t i = 0; i < full_stream.size(); ++i)
        EXPECT_EQ(full_stream[i].values, auto_stream[i].values);
    EXPECT_LT(auto_stream.back().readyAt,
              full_stream.back().readyAt);

    // An explicit rampStates still wins over auto-termination.
    AceConfig manual_cfg = auto_cfg;
    manual_cfg.rampStates = 4;
    Ace manual(manual_cfg);
    manual.setMatrix(m, 1, 1);
    EXPECT_EQ(manual.rampSweepStates(), 4u);
}

TEST(Ace, ProgrammingCostRecorded)
{
    CostTally tally;
    Ace ace(smallAce(), &tally);
    ace.setMatrix(randomMatrix(8, 8, -1, 1, 17), 1, 1);
    const CostEntry program = tally.get("ace.program");
    EXPECT_EQ(program.events, 2u * 8u * 8u);   // differential pairs
    EXPECT_GT(program.energy, 0.0);
}

TEST(Ace, UpdateRowChangesMvm)
{
    Ace ace(smallAce());
    MatrixI m(4, 4, 0);
    ace.setMatrix(m, 1, 1);
    std::vector<i64> x = {1, 1, 1, 1};
    EXPECT_EQ(ace.referenceMvm(x), (std::vector<i64>{0, 0, 0, 0}));
    ace.updateRow(1, {1, 1, 1, 1});
    const auto stream = ace.execMvm(x, 1, 0);
    EXPECT_EQ(Ace::reduceStream(stream, 4),
              (std::vector<i64>{1, 1, 1, 1}));
}

TEST(Ace, UpdateColChangesMvm)
{
    Ace ace(smallAce());
    MatrixI m(4, 4, 0);
    ace.setMatrix(m, 1, 1);
    ace.updateCol(2, {1, 0, 1, 0});
    const auto stream = ace.execMvm({1, 1, 1, 1}, 1, 0);
    EXPECT_EQ(Ace::reduceStream(stream, 4),
              (std::vector<i64>{0, 0, 2, 0}));
}

TEST(Ace, NoisyMvmStaysClose)
{
    AceConfig cfg = smallAce();
    cfg.noise.programSigma = 0.02;
    cfg.noise.readSigma = 0.005;
    Ace ace(cfg, nullptr, 99);
    const MatrixI m = randomMatrix(8, 8, -1, 1, 18);
    ace.setMatrix(m, 1, 1);
    std::vector<i64> x(8, 1);
    const auto stream = ace.execMvm(x, 1, 0);
    const auto noisy = Ace::reduceStream(stream, 8);
    const auto exact = ace.referenceMvm(x);
    for (std::size_t c = 0; c < 8; ++c)
        EXPECT_NEAR(static_cast<double>(noisy[c]),
                    static_cast<double>(exact[c]), 2.0);
}

TEST(AceDeath, MvmWithoutMatrixIsFatal)
{
    Ace ace(smallAce());
    EXPECT_THROW((void)ace.execMvm({1}, 1, 0), std::runtime_error);
}

TEST(AceDeath, WrongInputLengthIsFatal)
{
    Ace ace(smallAce());
    ace.setMatrix(MatrixI(4, 4, 1), 1, 1);
    EXPECT_THROW((void)ace.execMvm({1, 0}, 1, 0), std::runtime_error);
}

} // namespace
} // namespace analog
} // namespace darth
