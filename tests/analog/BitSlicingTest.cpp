/**
 * @file
 * Unit tests for matrix/input bit-slicing and recombination.
 */

#include <gtest/gtest.h>

#include "analog/BitSlicing.h"
#include "common/Random.h"

namespace darth
{
namespace analog
{
namespace
{

TEST(BitSlicing, SliceCount)
{
    EXPECT_EQ(numSlices(8, 4), 2);
    EXPECT_EQ(numSlices(8, 2), 4);
    EXPECT_EQ(numSlices(8, 8), 1);
    EXPECT_EQ(numSlices(4, 1), 4);
    EXPECT_EQ(numSlices(7, 2), 4);
}

TEST(BitSlicing, Figure2Example)
{
    // Figure 2: value 4-bit, sliced into two 2-bit slices. Array 1
    // stores Value[3:2], Array 0 stores Value[1:0].
    MatrixI m(1, 1);
    m(0, 0) = 0b0110;   // 6
    const auto slices = sliceSignedMatrix(m, 4, 2);
    ASSERT_EQ(slices.size(), 2u);
    EXPECT_EQ(slices[0](0, 0), 0b10);   // Value[1:0]
    EXPECT_EQ(slices[1](0, 0), 0b01);   // Value[3:2]
}

TEST(BitSlicing, SignedSlicesStayInCellRange)
{
    MatrixI m(1, 2);
    m(0, 0) = -13;
    m(0, 1) = 13;
    const auto slices = sliceSignedMatrix(m, 4, 2);
    for (const auto &slice : slices)
        for (std::size_t c = 0; c < 2; ++c) {
            EXPECT_GE(slice(0, c), -3);
            EXPECT_LE(slice(0, c), 3);
        }
}

TEST(BitSlicing, RecombineInvertsSlice)
{
    Rng rng(41);
    MatrixI m(6, 5);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = rng.uniformInt(i64{-127}, i64{127});
    for (int bpc : {1, 2, 4, 8}) {
        const auto slices = sliceSignedMatrix(m, 8, bpc);
        EXPECT_EQ(static_cast<int>(slices.size()), numSlices(8, bpc));
        EXPECT_EQ(recombineSlices(slices, bpc), m) << "bpc=" << bpc;
    }
}

TEST(BitSlicing, InputPlanesUnsigned)
{
    const auto planes = sliceInput({5, 3}, 4);
    ASSERT_EQ(planes.size(), 4u);
    // 5 = 0101, 3 = 0011, LSB plane first.
    EXPECT_EQ(planes[0].bits, (std::vector<int>{1, 1}));
    EXPECT_EQ(planes[1].bits, (std::vector<int>{0, 1}));
    EXPECT_EQ(planes[2].bits, (std::vector<int>{1, 0}));
    EXPECT_EQ(planes[3].bits, (std::vector<int>{0, 0}));
    for (const auto &p : planes)
        EXPECT_FALSE(p.negate);
}

TEST(BitSlicing, InputPlanesSignedMarksMsbNegative)
{
    const auto planes = sliceInput({-3, 2}, 4);
    ASSERT_EQ(planes.size(), 4u);
    EXPECT_FALSE(planes[0].negate);
    EXPECT_FALSE(planes[2].negate);
    EXPECT_TRUE(planes[3].negate);
    // -3 = 1101 two's complement.
    EXPECT_EQ(planes[0].bits[0], 1);
    EXPECT_EQ(planes[1].bits[0], 0);
    EXPECT_EQ(planes[2].bits[0], 1);
    EXPECT_EQ(planes[3].bits[0], 1);
}

TEST(BitSlicing, PlanesRecombineToExactMvm)
{
    Rng rng(43);
    MatrixI m(7, 4);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = rng.uniformInt(i64{-9}, i64{9});
    std::vector<i64> x(7);
    for (auto &v : x)
        v = rng.uniformInt(i64{-7}, i64{7});
    const auto planes = sliceInput(x, 4);
    const auto via_planes = referencePlanesMvm(planes, m);
    for (std::size_t c = 0; c < m.cols(); ++c) {
        i64 exact = 0;
        for (std::size_t r = 0; r < m.rows(); ++r)
            exact += x[r] * m(r, c);
        EXPECT_EQ(via_planes[c], exact);
    }
}

TEST(BitSlicingDeath, OutOfRangeValueIsFatal)
{
    MatrixI m(1, 1);
    m(0, 0) = 256;
    EXPECT_THROW((void)sliceSignedMatrix(m, 8, 4), std::runtime_error);
    EXPECT_THROW((void)sliceInput({300}, 8), std::runtime_error);
}

TEST(BitSlicingDeath, BadWidthsAreFatal)
{
    MatrixI m(1, 1);
    EXPECT_THROW((void)numSlices(0, 4), std::runtime_error);
    EXPECT_THROW((void)sliceInput({1}, 0), std::runtime_error);
}

} // namespace
} // namespace analog
} // namespace darth
