/**
 * @file
 * Unit tests for the analog crossbar: ideal MVM exactness, both
 * number mappings, and the IR-drop / noise behaviour the compensation
 * scheme depends on.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analog/Crossbar.h"
#include "common/Random.h"

namespace darth
{
namespace analog
{
namespace
{

TEST(Crossbar, PaperFigure1Example)
{
    // Figure 1: matrix {{5,9},{8,7}} (stored column-major as bitline
    // outputs), input (2,7) -> (66, 67). Needs 4-bit cells.
    Crossbar xb(8, 8, 4);
    MatrixI m(2, 2);
    m(0, 0) = 5; m(0, 1) = 9;
    m(1, 0) = 8; m(1, 1) = 7;
    xb.programSigned(m);
    const auto out = xb.mvm({2.0, 7.0});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(out[0], 2 * 5 + 7 * 8, 1e-6);
    EXPECT_NEAR(out[1], 2 * 9 + 7 * 7, 1e-6);
}

TEST(Crossbar, SignedValuesViaDifferentialPairs)
{
    Crossbar xb(8, 4, 3);
    MatrixI m(3, 2);
    m(0, 0) = -3; m(0, 1) = 7;
    m(1, 0) = 5;  m(1, 1) = -7;
    m(2, 0) = 0;  m(2, 1) = 2;
    xb.programSigned(m);
    const auto out = xb.mvmBitInput({1, 1, 1});
    EXPECT_NEAR(out[0], 2.0, 1e-6);
    EXPECT_NEAR(out[1], 2.0, 1e-6);
}

TEST(Crossbar, BitInputSubsetActivation)
{
    Crossbar xb(8, 4, 3);
    MatrixI m(3, 1);
    m(0, 0) = 1;
    m(1, 0) = 2;
    m(2, 0) = 4;
    xb.programSigned(m);
    EXPECT_NEAR(xb.mvmBitInput({1, 0, 0})[0], 1.0, 1e-6);
    EXPECT_NEAR(xb.mvmBitInput({0, 1, 0})[0], 2.0, 1e-6);
    EXPECT_NEAR(xb.mvmBitInput({1, 0, 1})[0], 5.0, 1e-6);
    EXPECT_NEAR(xb.mvmBitInput({0, 0, 0})[0], 0.0, 1e-6);
}

TEST(Crossbar, OffsetSubtractionMapping)
{
    // Offset mapping: cell = v + 2^(b-1); output retains the offset
    // which the caller subtracts as offset * sum(x).
    Crossbar xb(4, 4, 4);
    MatrixI m(2, 2);
    m(0, 0) = -3; m(0, 1) = 2;
    m(1, 0) = 1;  m(1, 1) = -7;
    xb.programOffset(m);
    const auto out = xb.mvmBitInput({1, 1});
    const i64 offset = 8;       // 2^(4-1)
    const i64 sum_x = 2;
    EXPECT_NEAR(out[0] - offset * sum_x, -2.0, 1e-6);
    EXPECT_NEAR(out[1] - offset * sum_x, -5.0, 1e-6);
}

TEST(Crossbar, ReferenceMvmMatchesIdealAnalog)
{
    Rng rng(31);
    Crossbar xb(64, 64, 2);
    MatrixI m(32, 64);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m(r, c) = rng.uniformInt(i64{-3}, i64{3});
    xb.programSigned(m);
    std::vector<int> bits(32);
    std::vector<i64> x(32);
    for (std::size_t i = 0; i < 32; ++i) {
        bits[i] = static_cast<int>(rng.uniformInt(u64{2}));
        x[i] = bits[i];
    }
    const auto analog = xb.mvmBitInput(bits);
    const auto exact = xb.referenceMvm(x);
    for (std::size_t c = 0; c < 64; ++c)
        EXPECT_NEAR(analog[c], static_cast<double>(exact[c]), 1e-6);
}

TEST(Crossbar, ProgrammingNoisePerturbsOutput)
{
    reram::NoiseModel noise;
    noise.programSigma = 0.05;
    Crossbar xb(64, 8, 1, noise, 17);
    MatrixI m(32, 8, 1);
    xb.programSigned(m);
    std::vector<int> bits(32, 1);
    const auto out = xb.mvmBitInput(bits);
    double err = 0.0;
    for (double v : out)
        err += std::abs(v - 32.0);
    EXPECT_GT(err, 0.0);
    EXPECT_LT(err / 8.0, 4.0);   // bounded perturbation
}

TEST(Crossbar, IrDropGrowsWithBitlineCurrent)
{
    // All-positive binary matrix: the positive bitline carries all
    // the current, so IR error rises with the number of active rows.
    reram::NoiseModel noise;
    noise.wireResistance = 0.01;
    auto error_with_rows = [&noise](std::size_t active) {
        Crossbar xb(64, 1, 1, noise, 3);
        MatrixI m(32, 1, 1);   // all ones
        xb.programSigned(m);
        std::vector<int> bits(32, 0);
        for (std::size_t i = 0; i < active; ++i)
            bits[i] = 1;
        const double out = xb.mvmBitInput(bits)[0];
        return std::abs(out - static_cast<double>(active));
    };
    EXPECT_LT(error_with_rows(2), error_with_rows(16));
    EXPECT_LT(error_with_rows(16), error_with_rows(32));
}

TEST(Crossbar, RemappedMatrixSuffersLessIrDrop)
{
    // §4.3 premise: storing {-1,+1} instead of {0,1} lets opposite
    // currents cancel in the wire, shrinking the IR-drop error.
    reram::NoiseModel noise;
    noise.wireResistance = 0.01;

    // Binary matrix with ~half ones.
    MatrixI m01(32, 1);
    for (std::size_t r = 0; r < 32; ++r)
        m01(r, 0) = static_cast<i64>(r % 2);
    std::vector<int> bits(32, 1);

    Crossbar naive(64, 1, 1, noise, 5);
    naive.programSigned(m01);
    const double naive_out = naive.mvmBitInput(bits)[0];
    const double naive_err = std::abs(naive_out - 16.0);

    MatrixI remapped(32, 1);
    for (std::size_t r = 0; r < 32; ++r)
        remapped(r, 0) = 2 * m01(r, 0) - 1;
    Crossbar comp(64, 1, 1, noise, 5);
    comp.programSigned(remapped);
    // raw = 2y - popcount(x) = 2*16 - 32 = 0.
    const double comp_out = comp.mvmBitInput(bits)[0];
    const double comp_err = std::abs(comp_out - 0.0);

    EXPECT_LT(comp_err, naive_err);
}

TEST(Crossbar, StuckCellsCorruptMvm)
{
    reram::NoiseModel noise;
    noise.stuckAtRate = 0.3;
    Crossbar xb(64, 16, 1, noise, 777);
    MatrixI m(32, 16, 1);
    xb.programSigned(m);
    std::vector<int> bits(32, 1);
    const auto out = xb.mvmBitInput(bits);
    double err = 0.0;
    for (double v : out)
        err += std::abs(v - 32.0);
    EXPECT_GT(err, 1.0);
}

TEST(CrossbarDeath, OverflowingCellCodeIsFatal)
{
    Crossbar xb(4, 4, 2);
    MatrixI m(1, 1);
    m(0, 0) = 4;    // > 2^2 - 1
    EXPECT_THROW(xb.programSigned(m), std::runtime_error);
}

TEST(CrossbarDeath, TooManyRowsIsFatal)
{
    Crossbar xb(4, 4, 1);
    MatrixI m(3, 1, 1);   // capacity is 4/2 = 2 signed rows
    EXPECT_THROW(xb.programSigned(m), std::runtime_error);
}

TEST(CrossbarDeath, NonBitInputIsFatal)
{
    Crossbar xb(4, 4, 1);
    MatrixI m(2, 1, 1);
    xb.programSigned(m);
    EXPECT_THROW((void)xb.mvmBitInput({2, 0}), std::runtime_error);
}

TEST(CrossbarDeath, OddRowCountIsFatal)
{
    EXPECT_THROW(Crossbar(5, 4, 1), std::runtime_error);
}

} // namespace
} // namespace analog
} // namespace darth
