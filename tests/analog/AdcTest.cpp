/**
 * @file
 * Unit tests for the ADC models.
 */

#include <gtest/gtest.h>

#include "analog/Adc.h"

namespace darth
{
namespace analog
{
namespace
{

AdcParams
sar8()
{
    AdcParams p;
    p.kind = AdcKind::Sar;
    p.bits = 8;
    return p;
}

AdcParams
ramp8()
{
    AdcParams p;
    p.kind = AdcKind::Ramp;
    p.bits = 8;
    return p;
}

TEST(Adc, CodeRange)
{
    Adc adc(sar8());
    EXPECT_EQ(adc.maxCode(), 127);
    EXPECT_EQ(adc.minCode(), -128);
}

TEST(Adc, ConvertRoundsToNearest)
{
    Adc adc(sar8());
    EXPECT_EQ(adc.convert(41.4), 41);
    EXPECT_EQ(adc.convert(41.6), 42);
    EXPECT_EQ(adc.convert(-3.4), -3);
    EXPECT_EQ(adc.convert(0.0), 0);
}

TEST(Adc, ConvertSaturates)
{
    Adc adc(sar8());
    EXPECT_EQ(adc.convert(500.0), 127);
    EXPECT_EQ(adc.convert(-500.0), -128);
}

TEST(Adc, ConvertIsMonotonic)
{
    Adc adc(sar8());
    i64 prev = adc.minCode();
    for (double v = -200.0; v <= 200.0; v += 0.5) {
        const i64 code = adc.convert(v);
        EXPECT_GE(code, prev);
        prev = code;
    }
}

TEST(Adc, SarLatencyMultiplexesLanes)
{
    Adc adc(sar8());
    // 64 bitlines over 2 ADCs at 1 cycle each = 32 cycles (Table 2).
    EXPECT_EQ(adc.conversionLatency(64, 2), 32u);
    EXPECT_EQ(adc.conversionLatency(64, 1), 64u);
    EXPECT_EQ(adc.conversionLatency(3, 2), 2u);
}

TEST(Adc, RampLatencyIsSweepIndependentOfLanes)
{
    Adc adc(ramp8());
    EXPECT_EQ(adc.conversionLatency(64, 1), 256u);
    EXPECT_EQ(adc.conversionLatency(1, 1), 256u);
}

TEST(Adc, RampEarlyTermination)
{
    // The AES MixColumns trick: only 4 reference states needed.
    Adc adc(ramp8());
    EXPECT_EQ(adc.conversionLatency(64, 1, 4), 4u);
    // Early termination cannot exceed the full sweep.
    EXPECT_EQ(adc.conversionLatency(64, 1, 999), 256u);
}

TEST(Adc, SarEnergyScalesWithLanes)
{
    Adc adc(sar8());
    EXPECT_DOUBLE_EQ(adc.conversionEnergy(64, 2),
                     64.0 * adc.params().sarEnergyPJ);
}

TEST(Adc, RampEnergyScalesWithSweep)
{
    Adc adc(ramp8());
    EXPECT_DOUBLE_EQ(adc.conversionEnergy(64, 1),
                     256.0 * adc.params().rampEnergyPerCyclePJ);
    EXPECT_DOUBLE_EQ(adc.conversionEnergy(64, 1, 4),
                     4.0 * adc.params().rampEnergyPerCyclePJ);
}

TEST(Adc, SarFasterThanRampForFullPrecision)
{
    // §7.3: SAR outperforms ramp except with early termination.
    Adc sar(sar8());
    Adc ramp(ramp8());
    EXPECT_LT(sar.conversionLatency(64, 2),
              ramp.conversionLatency(64, 1));
    EXPECT_LT(ramp.conversionLatency(64, 1, 4),
              sar.conversionLatency(64, 2));
}

TEST(AdcDeath, ZeroAdcsIsFatal)
{
    Adc adc(sar8());
    EXPECT_THROW((void)adc.conversionLatency(64, 0),
                 std::runtime_error);
}

TEST(Adc, KindNames)
{
    EXPECT_STREQ(adcKindName(AdcKind::Sar), "SAR");
    EXPECT_STREQ(adcKindName(AdcKind::Ramp), "Ramp");
}

} // namespace
} // namespace analog
} // namespace darth
