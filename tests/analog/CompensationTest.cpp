/**
 * @file
 * Unit tests for the §4.3 parasitic compensation scheme, including
 * the Figure 11 walkthrough.
 */

#include <gtest/gtest.h>

#include "analog/Compensation.h"
#include "common/Random.h"

namespace darth
{
namespace analog
{
namespace
{

TEST(Compensation, RemapBinary)
{
    MatrixI m(2, 2);
    m(0, 0) = 0; m(0, 1) = 1;
    m(1, 0) = 1; m(1, 1) = 0;
    const MatrixI r = Compensation::remapBinary(m);
    EXPECT_EQ(r(0, 0), -1);
    EXPECT_EQ(r(0, 1), 1);
    EXPECT_EQ(r(1, 0), 1);
    EXPECT_EQ(r(1, 1), -1);
}

TEST(Compensation, FactorIsPopcount)
{
    EXPECT_EQ(Compensation::compensationFactor({1, 0, 1, 1}), 3);
    EXPECT_EQ(Compensation::compensationFactor({0, 0}), 0);
}

TEST(Compensation, RecoverInvertsRemap)
{
    // y = sum m x; raw = sum (2m-1) x = 2y - P.
    Rng rng(51);
    for (int trial = 0; trial < 200; ++trial) {
        const std::size_t n = 1 + rng.uniformInt(u64{31});
        std::vector<i64> m(n), x(n);
        i64 y = 0, raw = 0, pop = 0;
        for (std::size_t i = 0; i < n; ++i) {
            m[i] = static_cast<i64>(rng.uniformInt(u64{2}));
            x[i] = static_cast<i64>(rng.uniformInt(u64{2}));
            y += m[i] * x[i];
            raw += (2 * m[i] - 1) * x[i];
            pop += x[i];
        }
        EXPECT_EQ(Compensation::recover(raw, pop), y);
        EXPECT_EQ(Compensation::recoverParity(((raw % 4) + 4) % 4, pop),
                  static_cast<int>(y & 1));
    }
}

TEST(Compensation, Figure11Walkthrough)
{
    // Figure 11: original SLC matrix rows produce results 1,1,2 for
    // input (1,1,0); after remapping the analog result vector is
    // (0,0,1)... scaled: raw = 2y - P with P = 2 ones -> compensation
    // factor 1 (= 2 x 0.5) recovers (1,1,2).
    MatrixI m(3, 3);
    // Columns are outputs; matrix from the figure (rows = inputs):
    // out0 = x0, out1 = x1, out2 = x0 + x1 (weights 0/1).
    m(0, 0) = 1; m(0, 1) = 0; m(0, 2) = 1;
    m(1, 0) = 0; m(1, 1) = 1; m(1, 2) = 1;
    m(2, 0) = 0; m(2, 1) = 0; m(2, 2) = 0;
    const std::vector<i64> x = {1, 1, 0};
    const i64 pop = Compensation::compensationFactor(x);
    EXPECT_EQ(pop, 2);

    const MatrixI remapped = Compensation::remapBinary(m);
    for (std::size_t c = 0; c < 3; ++c) {
        i64 y = 0, raw = 0;
        for (std::size_t r = 0; r < 3; ++r) {
            y += m(r, c) * x[r];
            raw += remapped(r, c) * x[r];
        }
        EXPECT_EQ(Compensation::recover(raw, pop), y);
    }
}

TEST(CompensationDeath, NonBinaryMatrixIsFatal)
{
    MatrixI m(1, 1);
    m(0, 0) = 2;
    EXPECT_THROW((void)Compensation::remapBinary(m),
                 std::runtime_error);
}

TEST(CompensationDeath, NonBitInputIsFatal)
{
    EXPECT_THROW((void)Compensation::compensationFactor({3}),
                 std::runtime_error);
}

TEST(CompensationDeath, OddInvariantIsFatal)
{
    EXPECT_THROW((void)Compensation::recover(2, 1),
                 std::runtime_error);
}

} // namespace
} // namespace analog
} // namespace darth
