/**
 * @file
 * Unit tests for the analog/digital arbiter.
 */

#include <gtest/gtest.h>

#include "hct/Arbiter.h"

namespace darth
{
namespace hct
{
namespace
{

TEST(Arbiter, StartsIdle)
{
    Arbiter arb;
    EXPECT_EQ(arb.mode(), Mode::Idle);
    EXPECT_EQ(arb.busyUntil(), 0u);
}

TEST(Arbiter, FirstAcquireHasNoPenalty)
{
    Arbiter arb;
    EXPECT_EQ(arb.acquire(Mode::Analog, 5), 5u);
    EXPECT_EQ(arb.mode(), Mode::Analog);
    EXPECT_EQ(arb.switchCount(), 0u);
}

TEST(Arbiter, SerializesBehindOwner)
{
    Arbiter arb;
    arb.acquire(Mode::Analog, 0);
    arb.release(100);
    // Same mode: wait for completion, no penalty.
    EXPECT_EQ(arb.acquire(Mode::Analog, 10), 100u);
}

TEST(Arbiter, ModeSwitchAddsPenalty)
{
    Arbiter arb(3);
    arb.acquire(Mode::Analog, 0);
    arb.release(50);
    EXPECT_EQ(arb.acquire(Mode::Digital, 0), 53u);
    EXPECT_EQ(arb.switchCount(), 1u);
}

TEST(Arbiter, YoungerInstructionWaitsForOlder)
{
    // §4.2: a digital instruction dependent on an analog MVM (e.g.
    // ReLU after MVM) stalls until the MVM completes.
    Arbiter arb(1);
    const Cycle mvm_start = arb.acquire(Mode::Analog, 0);
    const Cycle mvm_done = mvm_start + 400;   // hundreds of cycles
    arb.release(mvm_done);
    const Cycle relu_start = arb.acquire(Mode::Digital, 10);
    EXPECT_GE(relu_start, mvm_done);
}

TEST(Arbiter, ReleaseNeverMovesBackward)
{
    Arbiter arb;
    arb.acquire(Mode::Analog, 0);
    arb.release(100);
    arb.release(50);
    EXPECT_EQ(arb.busyUntil(), 100u);
}

TEST(Arbiter, ModeNames)
{
    EXPECT_STREQ(modeName(Mode::Idle), "idle");
    EXPECT_STREQ(modeName(Mode::Analog), "analog");
    EXPECT_STREQ(modeName(Mode::Digital), "digital");
}

} // namespace
} // namespace hct
} // namespace darth
