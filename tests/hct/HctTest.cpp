/**
 * @file
 * Integration tests for the hybrid compute tile: end-to-end MVM
 * exactness through ACE + shift units + DCE reduction, the Figure 10
 * shift-unit optimization, IIU ablation, and vACore management.
 */

#include <gtest/gtest.h>

#include "common/Random.h"
#include "hct/Hct.h"

namespace darth
{
namespace hct
{
namespace
{

HctConfig
smallHct()
{
    HctConfig cfg;
    cfg.dce.numPipelines = 4;
    cfg.dce.pipeline.depth = 32;
    cfg.dce.pipeline.width = 8;
    cfg.dce.pipeline.numRegs = 8;
    cfg.ace.numArrays = 16;
    cfg.ace.arrayRows = 16;
    cfg.ace.arrayCols = 8;
    return cfg;
}

MatrixI
randomMatrix(std::size_t rows, std::size_t cols, i64 lo, i64 hi,
             u64 seed)
{
    Rng rng(seed);
    MatrixI m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniformInt(lo, hi);
    return m;
}

std::vector<i64>
randomVector(std::size_t n, i64 lo, i64 hi, u64 seed)
{
    Rng rng(seed);
    std::vector<i64> x(n);
    for (auto &v : x)
        v = rng.uniformInt(lo, hi);
    return x;
}

TEST(Hct, PaperDefaultMatchesTable2)
{
    const HctConfig cfg = HctConfig::paperDefault(analog::AdcKind::Sar);
    EXPECT_EQ(cfg.dce.numPipelines, 64u);
    EXPECT_EQ(cfg.dce.pipeline.depth, 64u);
    EXPECT_EQ(cfg.ace.numArrays, 64u);
    EXPECT_EQ(cfg.ace.numAdcs, 8u);
    const HctConfig ramp =
        HctConfig::paperDefault(analog::AdcKind::Ramp);
    EXPECT_EQ(ramp.ace.numAdcs, 1u);
}

TEST(Hct, MvmExactBinaryMatrix)
{
    Hct hct(smallHct());
    const MatrixI m = randomMatrix(8, 8, 0, 1, 61);
    hct.setMatrix(m, 1, 1);
    const auto x = randomVector(8, 0, 1, 62);
    const auto result = hct.execMvm(x, 1, 0);
    EXPECT_EQ(result.values, hct.ace().referenceMvm(x));
    EXPECT_GT(result.done, 0u);
}

TEST(Hct, MvmExactSignedMultiBit)
{
    Hct hct(smallHct());
    const MatrixI m = randomMatrix(8, 8, -7, 7, 63);
    hct.setMatrix(m, 3, 1);
    const auto x = randomVector(8, -8, 7, 64);
    const auto result = hct.execMvm(x, 4, 0);
    EXPECT_EQ(result.values, hct.ace().referenceMvm(x));
}

TEST(Hct, MvmExactWithTiling)
{
    Hct hct(smallHct());
    // 16 rows (2 row tiles) x 16 cols (2 col tiles, 2 reduction
    // pipelines), 4-bit elements at 2 bits per cell (2 slices).
    const MatrixI m = randomMatrix(16, 16, -15, 15, 65);
    hct.setMatrix(m, 4, 2);
    const auto x = randomVector(16, -4, 3, 66);
    const auto result = hct.execMvm(x, 3, 0);
    EXPECT_EQ(result.values, hct.ace().referenceMvm(x));
}

TEST(Hct, MvmExactNegativeResults)
{
    Hct hct(smallHct());
    MatrixI m(4, 4, -1);
    hct.setMatrix(m, 1, 1);
    std::vector<i64> x = {3, 3, 3, 3};
    const auto result = hct.execMvm(x, 3, 0);
    EXPECT_EQ(result.values, (std::vector<i64>{-12, -12, -12, -12}));
}

TEST(Hct, ShiftUnitsImproveLatency)
{
    // Figure 10: shifting during the transfer removes the
    // write/shift serialization.
    const MatrixI m = randomMatrix(8, 8, -7, 7, 67);
    const auto x = randomVector(8, 0, 15, 68);

    HctConfig with = smallHct();
    Hct fast(with);
    fast.setMatrix(m, 3, 1);
    const auto fast_result = fast.execMvm(x, 4, 0);

    HctConfig without = smallHct();
    without.shiftUnits = false;
    Hct slow(without);
    slow.setMatrix(m, 3, 1);
    const auto slow_result = slow.execMvm(x, 4, 0);

    EXPECT_EQ(fast_result.values, slow_result.values);   // same maths
    EXPECT_LT(fast_result.done, slow_result.done);       // faster
}

TEST(Hct, IiuRemovesFrontEndStalls)
{
    const MatrixI m = randomMatrix(8, 8, -7, 7, 69);
    const auto x = randomVector(8, 0, 15, 70);

    HctConfig with = smallHct();
    Hct fast(with);
    fast.setMatrix(m, 3, 1);
    const auto fast_result = fast.execMvm(x, 4, 0);
    EXPECT_GT(fast.iiu().injectedUops(), 0u);

    HctConfig without = smallHct();
    without.iiu.enabled = false;
    Hct slow(without);
    slow.setMatrix(m, 3, 1);
    const auto slow_result = slow.execMvm(x, 4, 0);

    EXPECT_EQ(fast_result.values, slow_result.values);
    EXPECT_LT(fast_result.done, slow_result.done);
}

TEST(Hct, TransposeUnitAblation)
{
    const MatrixI m = randomMatrix(8, 8, -1, 1, 71);
    const auto x = randomVector(8, 0, 1, 72);

    HctConfig with = smallHct();
    Hct fast(with);
    fast.setMatrix(m, 1, 1);
    const auto fast_result = fast.execMvm(x, 1, 0);

    HctConfig without = smallHct();
    without.transpose.enabled = false;
    Hct slow(without);
    slow.setMatrix(m, 1, 1);
    const auto slow_result = slow.execMvm(x, 1, 0);

    EXPECT_EQ(fast_result.values, slow_result.values);
    EXPECT_LT(fast_result.done, slow_result.done);
}

TEST(Hct, ArbiterMakesMvmAtomic)
{
    Hct hct(smallHct());
    hct.setMatrix(randomMatrix(8, 8, -1, 1, 73), 1, 1);
    const auto result = hct.execMvm(randomVector(8, 0, 1, 74), 1, 0);
    // A digital macro issued at cycle 0 must start after the MVM.
    const Cycle digital_done = hct.digitalMacro(
        3, digital::MacroKind::Xor, 2, 0, 1, 8, 0);
    EXPECT_GT(digital_done, result.done);
}

TEST(Hct, LoadAndReadVectorRoundTrip)
{
    Hct hct(smallHct());
    const std::vector<i64> values = {1, -2, 3, -4, 5, -6, 7, -8};
    hct.loadVector(0, 2, values, 8, 0);
    EXPECT_EQ(hct.readVector(0, 2, 8), values);
}

TEST(Hct, DigitalMacroThroughArbiter)
{
    Hct hct(smallHct());
    hct.loadVector(0, 2, {10, 20, 30, 40, 50, 60, 70, 80}, 16, 0);
    hct.loadVector(0, 3, {1, 2, 3, 4, 5, 6, 7, 8}, 16, 0);
    hct.digitalMacro(0, digital::MacroKind::Add, 4, 2, 3, 16, 0);
    EXPECT_EQ(hct.readVector(0, 4, 16),
              (std::vector<i64>{11, 22, 33, 44, 55, 66, 77, 88}));
}

TEST(Hct, DisableAnalogModeBlocksMvm)
{
    Hct hct(smallHct());
    hct.setMatrix(randomMatrix(8, 8, -1, 1, 75), 1, 1);
    const Cycle done = hct.disableAnalogMode(0);
    EXPECT_GT(done, 0u);
    EXPECT_FALSE(hct.analogEnabled());
    EXPECT_THROW((void)hct.execMvm(randomVector(8, 0, 1, 76), 1, 0),
                 std::runtime_error);
}

TEST(Hct, DisableDigitalModeReturnsRawPartials)
{
    Hct hct(smallHct());
    const MatrixI m = randomMatrix(8, 8, -1, 1, 77);
    hct.setMatrix(m, 1, 1);
    hct.disableDigitalMode();
    // Single-plane single-slice MVM: the raw partial is the result.
    const auto x = randomVector(8, 0, 1, 78);
    const auto result = hct.execMvm(x, 1, 0);
    EXPECT_EQ(result.values, hct.ace().referenceMvm(x));
}

TEST(Hct, AccumulatorWidthCoversWorstCase)
{
    Hct hct(smallHct());
    hct.setMatrix(randomMatrix(16, 8, -15, 15, 79), 4, 2);
    // 4-bit elements, 4-bit inputs, 16 rows -> needs >= 4+4+4+1 bits.
    EXPECT_GE(hct.accumulatorBits(4), 13);
    EXPECT_LE(hct.accumulatorBits(4), 32);
}

TEST(Hct, MvmCountIncrements)
{
    Hct hct(smallHct());
    hct.setMatrix(randomMatrix(8, 8, 0, 1, 80), 1, 1);
    EXPECT_EQ(hct.mvmCount(), 0u);
    hct.execMvm(randomVector(8, 0, 1, 81), 1, 0);
    hct.execMvm(randomVector(8, 0, 1, 82), 1, 0);
    EXPECT_EQ(hct.mvmCount(), 2u);
}

TEST(Hct, CostTallyCoversAllComponents)
{
    CostTally tally;
    Hct hct(smallHct(), &tally);
    hct.setMatrix(randomMatrix(8, 8, -7, 7, 83), 3, 1);
    hct.execMvm(randomVector(8, 0, 15, 84), 4, 0);
    EXPECT_GT(tally.get("ace.program").energy, 0.0);
    EXPECT_GT(tally.get("ace.adc").energy, 0.0);
    EXPECT_GT(tally.get("ace.dac").energy, 0.0);
    EXPECT_GT(tally.get("dce.boolop").energy, 0.0);
    EXPECT_GT(tally.get("hct.network").energy, 0.0);
}

TEST(HctDeath, MvmWithoutVACoreIsFatal)
{
    Hct hct(smallHct());
    EXPECT_THROW((void)hct.execMvm({1}, 1, 0), std::runtime_error);
}

/** Property sweep: hybrid MVM equals the integer reference. */
class HctMvmProperty : public ::testing::TestWithParam<u64>
{
};

TEST_P(HctMvmProperty, MatchesReference)
{
    const u64 seed = GetParam();
    Hct hct(smallHct());
    const MatrixI m = randomMatrix(8, 8, -3, 3, seed);
    hct.setMatrix(m, 2, 2);
    const auto x = randomVector(8, -4, 3, seed + 1000);
    const auto result = hct.execMvm(x, 3, 0);
    EXPECT_EQ(result.values, hct.ace().referenceMvm(x));
}

INSTANTIATE_TEST_SUITE_P(Sweep, HctMvmProperty,
                         ::testing::Range(u64{100}, u64{120}));

} // namespace
} // namespace hct
} // namespace darth
