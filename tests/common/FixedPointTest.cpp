/**
 * @file
 * Unit tests for Quantizer and integer helpers.
 */

#include <gtest/gtest.h>

#include "common/FixedPoint.h"

namespace darth
{
namespace
{

TEST(Quantizer, ForRangeCoversAbsMax)
{
    const Quantizer q = Quantizer::forRange(8, 1.0);
    EXPECT_EQ(q.quantize(1.0), 127);
    EXPECT_EQ(q.quantize(-1.0), -127);
    EXPECT_EQ(q.quantize(0.0), 0);
}

TEST(Quantizer, ClampsOutOfRange)
{
    const Quantizer q = Quantizer::forRange(8, 1.0);
    EXPECT_EQ(q.quantize(5.0), 127);
    EXPECT_EQ(q.quantize(-5.0), -128);
}

TEST(Quantizer, RoundTripErrorBounded)
{
    const Quantizer q = Quantizer::forRange(8, 2.0);
    for (double x = -2.0; x <= 2.0; x += 0.01) {
        const double reconstructed = q.dequantize(q.quantize(x));
        EXPECT_NEAR(reconstructed, x, q.scale() / 2.0 + 1e-12);
    }
}

TEST(Quantizer, VectorQuantize)
{
    const Quantizer q = Quantizer::forRange(4, 7.0);
    const auto codes = q.quantize(std::vector<double>{7.0, -7.0, 0.0});
    ASSERT_EQ(codes.size(), 3u);
    EXPECT_EQ(codes[0], 7);
    EXPECT_EQ(codes[1], -7);
    EXPECT_EQ(codes[2], 0);
}

TEST(Quantizer, DegenerateRangeDoesNotDivideByZero)
{
    const Quantizer q = Quantizer::forRange(8, 0.0);
    EXPECT_EQ(q.quantize(0.0), 0);
}

TEST(AbsMax, FindsLargestMagnitude)
{
    EXPECT_DOUBLE_EQ(absMax({1.0, -3.5, 2.0}), 3.5);
    EXPECT_DOUBLE_EQ(absMax({}), 0.0);
}

TEST(Isqrt, SmallValues)
{
    EXPECT_EQ(isqrt(0), 0);
    EXPECT_EQ(isqrt(1), 1);
    EXPECT_EQ(isqrt(2), 1);
    EXPECT_EQ(isqrt(3), 1);
    EXPECT_EQ(isqrt(4), 2);
    EXPECT_EQ(isqrt(15), 3);
    EXPECT_EQ(isqrt(16), 4);
}

TEST(Isqrt, NegativeClampsToZero)
{
    EXPECT_EQ(isqrt(-5), 0);
}

/** Property: isqrt(x)^2 <= x < (isqrt(x)+1)^2 across a wide sweep. */
class IsqrtPropertyTest : public ::testing::TestWithParam<i64>
{
};

TEST_P(IsqrtPropertyTest, FloorSquareRootInvariant)
{
    const i64 x = GetParam();
    const i64 r = isqrt(x);
    EXPECT_LE(r * r, x);
    EXPECT_GT((r + 1) * (r + 1), x);
}

INSTANTIATE_TEST_SUITE_P(Sweep, IsqrtPropertyTest,
                         ::testing::Values(i64{0}, i64{1}, i64{2},
                                           i64{99}, i64{100}, i64{101},
                                           i64{1} << 20,
                                           (i64{1} << 30) - 1,
                                           i64{1} << 40,
                                           i64{999999999999}));

} // namespace
} // namespace darth
