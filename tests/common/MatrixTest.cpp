/**
 * @file
 * Unit tests for the dense Matrix container.
 */

#include <gtest/gtest.h>

#include "common/Matrix.h"

namespace darth
{
namespace
{

TEST(Matrix, ConstructAndIndex)
{
    MatrixI m(2, 3, 7);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_EQ(m(1, 2), 7);
    m(1, 2) = 42;
    EXPECT_EQ(m(1, 2), 42);
}

TEST(Matrix, RowAndColExtraction)
{
    MatrixI m(2, 2);
    m(0, 0) = 1; m(0, 1) = 2;
    m(1, 0) = 3; m(1, 1) = 4;
    EXPECT_EQ(m.row(0), (std::vector<i64>{1, 2}));
    EXPECT_EQ(m.col(1), (std::vector<i64>{2, 4}));
}

TEST(Matrix, SetRowSetCol)
{
    MatrixI m(2, 2);
    m.setRow(0, {5, 6});
    m.setCol(0, {7, 8});
    EXPECT_EQ(m(0, 0), 7);
    EXPECT_EQ(m(0, 1), 6);
    EXPECT_EQ(m(1, 0), 8);
}

TEST(Matrix, Transposed)
{
    MatrixI m(2, 3);
    int v = 0;
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            m(r, c) = v++;
    MatrixI t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    for (std::size_t r = 0; r < 2; ++r)
        for (std::size_t c = 0; c < 3; ++c)
            EXPECT_EQ(t(c, r), m(r, c));
}

TEST(Matrix, MultiplyMatchesPaperExample)
{
    // Figure 1: [5 9; 8 7] * [2; 7] = [66; 67] (column convention of
    // the figure: out_c = sum_r M(r, c) * x(r); we store transposed).
    MatrixI m(2, 2);
    m(0, 0) = 5; m(0, 1) = 9;
    m(1, 0) = 8; m(1, 1) = 7;
    const auto y = m.transposed().multiply({2, 7});
    EXPECT_EQ(y[0], 66);
    EXPECT_EQ(y[1], 67);
}

TEST(Matrix, MultiplyIdentity)
{
    MatrixD eye(3, 3);
    for (std::size_t i = 0; i < 3; ++i)
        eye(i, i) = 1.0;
    const auto y = eye.multiply({1.5, -2.0, 3.25});
    EXPECT_DOUBLE_EQ(y[0], 1.5);
    EXPECT_DOUBLE_EQ(y[1], -2.0);
    EXPECT_DOUBLE_EQ(y[2], 3.25);
}

TEST(MatrixDeath, OutOfBoundsPanics)
{
    MatrixI m(2, 2);
    EXPECT_DEATH((void)m.at(2, 0), "out of range");
    EXPECT_DEATH((void)m.at(0, 2), "out of range");
}

TEST(MatrixDeath, MultiplyShapeMismatchPanics)
{
    MatrixI m(2, 3);
    EXPECT_DEATH((void)m.multiply({1, 2}), "vector length");
}

} // namespace
} // namespace darth
