/**
 * @file
 * Unit tests for BitVector: construction, accessors, Boolean ops,
 * shifts, slices, and round-trips.
 */

#include <gtest/gtest.h>

#include "common/BitVector.h"

namespace darth
{
namespace
{

TEST(BitVector, DefaultIsEmpty)
{
    BitVector bv;
    EXPECT_EQ(bv.size(), 0u);
    EXPECT_TRUE(bv.empty());
}

TEST(BitVector, ConstructAllZero)
{
    BitVector bv(100);
    EXPECT_EQ(bv.size(), 100u);
    EXPECT_EQ(bv.popcount(), 0u);
}

TEST(BitVector, ConstructAllOne)
{
    BitVector bv(100, true);
    EXPECT_EQ(bv.popcount(), 100u);
    for (std::size_t i = 0; i < 100; ++i)
        EXPECT_TRUE(bv.get(i));
}

TEST(BitVector, SetGetRoundTrip)
{
    BitVector bv(130);
    bv.set(0, true);
    bv.set(63, true);
    bv.set(64, true);
    bv.set(129, true);
    EXPECT_TRUE(bv.get(0));
    EXPECT_TRUE(bv.get(63));
    EXPECT_TRUE(bv.get(64));
    EXPECT_TRUE(bv.get(129));
    EXPECT_FALSE(bv.get(1));
    EXPECT_FALSE(bv.get(128));
    EXPECT_EQ(bv.popcount(), 4u);
}

TEST(BitVector, FromIntegerToInteger)
{
    const u64 value = 0xDEADBEEFCAFE1234ULL;
    BitVector bv = BitVector::fromInteger(value, 64);
    EXPECT_EQ(bv.toInteger(), value);
}

TEST(BitVector, FromIntegerTruncates)
{
    BitVector bv = BitVector::fromInteger(0xFF, 4);
    EXPECT_EQ(bv.toInteger(), 0xFull);
    EXPECT_EQ(bv.size(), 4u);
}

TEST(BitVector, FromStringMsbFirst)
{
    BitVector bv = BitVector::fromString("1010");
    EXPECT_EQ(bv.toInteger(), 0b1010ull);
    EXPECT_EQ(bv.toString(), "1010");
}

TEST(BitVector, ToSignedNegative)
{
    // 4-bit 0b1111 = -1 in two's complement.
    BitVector bv = BitVector::fromInteger(0xF, 4);
    EXPECT_EQ(bv.toSigned(), -1);
}

TEST(BitVector, ToSignedPositive)
{
    BitVector bv = BitVector::fromInteger(0x5, 4);
    EXPECT_EQ(bv.toSigned(), 5);
}

TEST(BitVector, NorMatchesDefinition)
{
    BitVector a = BitVector::fromString("0011");
    BitVector b = BitVector::fromString("0101");
    EXPECT_EQ(a.nor(b).toString(), "1000");
}

TEST(BitVector, AndOrXorNot)
{
    BitVector a = BitVector::fromString("0011");
    BitVector b = BitVector::fromString("0101");
    EXPECT_EQ((a & b).toString(), "0001");
    EXPECT_EQ((a | b).toString(), "0111");
    EXPECT_EQ((a ^ b).toString(), "0110");
    EXPECT_EQ((~a).toString(), "1100");
}

TEST(BitVector, NotMasksTailBits)
{
    BitVector a(65);
    BitVector inverted = ~a;
    EXPECT_EQ(inverted.popcount(), 65u);
}

TEST(BitVector, ShiftUpMultipliesByTwo)
{
    BitVector a = BitVector::fromInteger(0b0101, 8);
    EXPECT_EQ(a.shiftedUp(1).toInteger(), 0b1010ull);
    EXPECT_EQ(a.shiftedUp(2).toInteger(), 0b10100ull);
}

TEST(BitVector, ShiftDownDividesByTwo)
{
    BitVector a = BitVector::fromInteger(0b1010, 8);
    EXPECT_EQ(a.shiftedDown(1).toInteger(), 0b0101ull);
    EXPECT_EQ(a.shiftedDown(3).toInteger(), 0b0001ull);
}

TEST(BitVector, ShiftDropsBitsOffTheEnd)
{
    BitVector a = BitVector::fromInteger(0b1000, 4);
    EXPECT_EQ(a.shiftedUp(1).toInteger(), 0ull);
}

TEST(BitVector, Reversed)
{
    BitVector a = BitVector::fromString("1100");
    EXPECT_EQ(a.reversed().toString(), "0011");
}

TEST(BitVector, Slice)
{
    BitVector a = BitVector::fromInteger(0xAB, 8);
    EXPECT_EQ(a.slice(0, 4).toInteger(), 0xBull);
    EXPECT_EQ(a.slice(4, 4).toInteger(), 0xAull);
}

TEST(BitVector, EqualityComparesContentsAndSize)
{
    BitVector a = BitVector::fromInteger(0x3, 4);
    BitVector b = BitVector::fromInteger(0x3, 4);
    BitVector c = BitVector::fromInteger(0x3, 5);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(BitVector, FillAndResize)
{
    BitVector a(10);
    a.fill(true);
    EXPECT_EQ(a.popcount(), 10u);
    a.resize(20);
    EXPECT_EQ(a.size(), 20u);
    EXPECT_EQ(a.popcount(), 10u);
}

TEST(BitVectorDeath, OutOfRangeGetPanics)
{
    BitVector a(4);
    EXPECT_DEATH((void)a.get(4), "out of range");
}

/** Property sweep: x | y, x & y, x ^ y match 64-bit integer semantics. */
class BitVectorPropertyTest : public ::testing::TestWithParam<u64>
{
};

TEST_P(BitVectorPropertyTest, OpsMatchWordSemantics)
{
    const u64 x = GetParam();
    const u64 y = x * 0x9E3779B97F4A7C15ULL + 12345;
    BitVector a = BitVector::fromInteger(x, 64);
    BitVector b = BitVector::fromInteger(y, 64);
    EXPECT_EQ((a & b).toInteger(), x & y);
    EXPECT_EQ((a | b).toInteger(), x | y);
    EXPECT_EQ((a ^ b).toInteger(), x ^ y);
    EXPECT_EQ((~a).toInteger(), ~x);
    EXPECT_EQ(a.nor(b).toInteger(), ~(x | y));
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitVectorPropertyTest,
                         ::testing::Values(0ull, 1ull, 0xFFull,
                                           0xDEADBEEFull,
                                           0x8000000000000000ull,
                                           0xFFFFFFFFFFFFFFFFull,
                                           0x5555555555555555ull,
                                           0xAAAAAAAAAAAAAAAAull));

} // namespace
} // namespace darth
