/**
 * @file
 * Unit tests for the deterministic Rng.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/Random.h"

namespace darth
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    const u64 first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(4);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(5);
    double sum = 0.0, sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianMeanSigma)
{
    Rng rng(6);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, LogNormalAlwaysPositive)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.logNormal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(8);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, UniformIntInRange)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        const i64 v = rng.uniformInt(i64{-5}, i64{5});
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntCoversRange)
{
    Rng rng(10);
    bool seen[10] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.uniformInt(u64{10})] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

} // namespace
} // namespace darth
