/**
 * @file
 * Unit tests for CostTally, geoMean, and the percentile/summary
 * helpers backing the serving telemetry.
 */

#include <gtest/gtest.h>

#include "common/Stats.h"

namespace darth
{
namespace
{

TEST(CostTally, AddAndGet)
{
    CostTally tally;
    tally.add("ace.adc", 10, 2.5);
    tally.add("ace.adc", 5, 1.5);
    const CostEntry e = tally.get("ace.adc");
    EXPECT_EQ(e.events, 2u);
    EXPECT_EQ(e.cycles, 15u);
    EXPECT_DOUBLE_EQ(e.energy, 4.0);
}

TEST(CostTally, MissingCategoryIsZero)
{
    CostTally tally;
    const CostEntry e = tally.get("nope");
    EXPECT_EQ(e.events, 0u);
    EXPECT_EQ(e.cycles, 0u);
    EXPECT_DOUBLE_EQ(e.energy, 0.0);
}

TEST(CostTally, Merge)
{
    CostTally a, b;
    a.add("x", 1, 1.0);
    b.add("x", 2, 2.0);
    b.add("y", 3, 3.0);
    a.merge(b);
    EXPECT_EQ(a.get("x").cycles, 3u);
    EXPECT_EQ(a.get("y").cycles, 3u);
}

TEST(CostTally, MergePrefixed)
{
    CostTally a, b;
    b.add("dce.boolop", 4, 8.0);
    a.mergePrefixed("hct0.", b);
    EXPECT_EQ(a.get("hct0.dce.boolop").cycles, 4u);
}

TEST(CostTally, PrefixSums)
{
    CostTally tally;
    tally.add("dce.boolop", 10, 1.0);
    tally.add("dce.io", 5, 2.0);
    tally.add("ace.adc", 7, 4.0);
    EXPECT_EQ(tally.cyclesWithPrefix("dce."), 15u);
    EXPECT_DOUBLE_EQ(tally.energyWithPrefix("dce."), 3.0);
    EXPECT_DOUBLE_EQ(tally.totalEnergy(), 7.0);
    EXPECT_EQ(tally.totalCycles(), 22u);
}

TEST(CostTally, ClearDropsEverything)
{
    CostTally tally;
    tally.add("x", 1, 1.0);
    tally.clear();
    EXPECT_EQ(tally.totalCycles(), 0u);
    EXPECT_TRUE(tally.entries().empty());
}

TEST(GeoMean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0, 2.0, 2.0}), 2.0);
}

TEST(GeoMean, EmptyIsOne)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 1.0);
}

TEST(GeoMean, PaperHeadline)
{
    // Paper: 59.4x, 14.8x, 40.8x -> geomean 31.4x (abstract).
    const double g = geoMean({59.4, 14.8, 40.8});
    EXPECT_NEAR(g, 33.0, 2.5);
}

TEST(Percentile, NearestRankDefinition)
{
    const std::vector<double> sample = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(sample, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 20.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 50.0), 3.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 90.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 100.0), 5.0);
    // Out-of-range p clamps rather than reading out of bounds.
    EXPECT_DOUBLE_EQ(percentile(sample, 150.0), 5.0);
    EXPECT_DOUBLE_EQ(percentile(sample, -5.0), 1.0);
}

TEST(Percentile, EmptyAndSingleton)
{
    EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 1.0), 7.0);
    EXPECT_DOUBLE_EQ(percentile({7.0}, 99.0), 7.0);
}

TEST(Percentile, TailIsExactOnLargeSample)
{
    std::vector<double> sample;
    for (int i = 1; i <= 100; ++i)
        sample.push_back(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(percentile(sample, 50.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 95.0), 95.0);
    EXPECT_DOUBLE_EQ(percentile(sample, 99.0), 99.0);
}

TEST(SampleSummary, SummarizeMatchesComponents)
{
    std::vector<double> sample;
    for (int i = 10; i >= 1; --i)
        sample.push_back(static_cast<double>(i));
    const SampleSummary s = summarize(sample);
    EXPECT_EQ(s.count, 10u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 10.0);
    EXPECT_DOUBLE_EQ(s.mean, 5.5);
    EXPECT_DOUBLE_EQ(s.p50, percentile(sample, 50.0));
    EXPECT_DOUBLE_EQ(s.p95, percentile(sample, 95.0));
    EXPECT_DOUBLE_EQ(s.p99, percentile(sample, 99.0));

    const SampleSummary empty = summarize({});
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

} // namespace
} // namespace darth
