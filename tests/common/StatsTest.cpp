/**
 * @file
 * Unit tests for CostTally and geoMean.
 */

#include <gtest/gtest.h>

#include "common/Stats.h"

namespace darth
{
namespace
{

TEST(CostTally, AddAndGet)
{
    CostTally tally;
    tally.add("ace.adc", 10, 2.5);
    tally.add("ace.adc", 5, 1.5);
    const CostEntry e = tally.get("ace.adc");
    EXPECT_EQ(e.events, 2u);
    EXPECT_EQ(e.cycles, 15u);
    EXPECT_DOUBLE_EQ(e.energy, 4.0);
}

TEST(CostTally, MissingCategoryIsZero)
{
    CostTally tally;
    const CostEntry e = tally.get("nope");
    EXPECT_EQ(e.events, 0u);
    EXPECT_EQ(e.cycles, 0u);
    EXPECT_DOUBLE_EQ(e.energy, 0.0);
}

TEST(CostTally, Merge)
{
    CostTally a, b;
    a.add("x", 1, 1.0);
    b.add("x", 2, 2.0);
    b.add("y", 3, 3.0);
    a.merge(b);
    EXPECT_EQ(a.get("x").cycles, 3u);
    EXPECT_EQ(a.get("y").cycles, 3u);
}

TEST(CostTally, MergePrefixed)
{
    CostTally a, b;
    b.add("dce.boolop", 4, 8.0);
    a.mergePrefixed("hct0.", b);
    EXPECT_EQ(a.get("hct0.dce.boolop").cycles, 4u);
}

TEST(CostTally, PrefixSums)
{
    CostTally tally;
    tally.add("dce.boolop", 10, 1.0);
    tally.add("dce.io", 5, 2.0);
    tally.add("ace.adc", 7, 4.0);
    EXPECT_EQ(tally.cyclesWithPrefix("dce."), 15u);
    EXPECT_DOUBLE_EQ(tally.energyWithPrefix("dce."), 3.0);
    EXPECT_DOUBLE_EQ(tally.totalEnergy(), 7.0);
    EXPECT_EQ(tally.totalCycles(), 22u);
}

TEST(CostTally, ClearDropsEverything)
{
    CostTally tally;
    tally.add("x", 1, 1.0);
    tally.clear();
    EXPECT_EQ(tally.totalCycles(), 0u);
    EXPECT_TRUE(tally.entries().empty());
}

TEST(GeoMean, MatchesHandComputation)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 9.0}), 6.0);
    EXPECT_DOUBLE_EQ(geoMean({2.0, 2.0, 2.0}), 2.0);
}

TEST(GeoMean, EmptyIsOne)
{
    EXPECT_DOUBLE_EQ(geoMean({}), 1.0);
}

TEST(GeoMean, PaperHeadline)
{
    // Paper: 59.4x, 14.8x, 40.8x -> geomean 31.4x (abstract).
    const double g = geoMean({59.4, 14.8, 40.8});
    EXPECT_NEAR(g, 33.0, 2.5);
}

} // namespace
} // namespace darth
