/**
 * @file
 * Unit tests for the Table 2/3 area, power, and chip models.
 */

#include <gtest/gtest.h>

#include "model/Params.h"

namespace darth
{
namespace model
{
namespace
{

TEST(HctGeometry, Table2Defaults)
{
    HctGeometry g;
    EXPECT_EQ(g.dcePipelines, 64u);
    EXPECT_EQ(g.dcePipelineDepth, 64u);
    EXPECT_EQ(g.aceArrays, 64u);
    EXPECT_EQ(g.numAdcs(analog::AdcKind::Sar), 8u);
    EXPECT_EQ(g.numAdcs(analog::AdcKind::Ramp), 1u);
}

TEST(HctGeometry, StorageBits)
{
    HctGeometry g;
    // DCE: 64 pipelines x 64 arrays x 64x64 bits; ACE: 64 x 64x64.
    const u64 expected =
        64ull * 64 * 64 * 64 + 64ull * 64 * 64;
    EXPECT_EQ(g.bitsPerHct(), expected);
}

TEST(AreaModel, HctAreaComponentsAddUp)
{
    AreaModel a;
    const double dce = a.dceArea();
    EXPECT_NEAR(dce, 240 + 74000 + 9600 + 280 + 64, 1e-9);
    const double ace_sar = a.aceArea(analog::AdcKind::Sar, 8);
    EXPECT_NEAR(ace_sar, 240 + 27000 + 13000 + 8 * 600 + 8 * 62, 1e-9);
}

TEST(AreaModel, RampAceLargerThanSar)
{
    AreaModel a;
    EXPECT_GT(a.aceArea(analog::AdcKind::Ramp, 1),
              a.aceArea(analog::AdcKind::Sar, 8));
}

TEST(AreaModel, IsoAreaHctCountNearPaper)
{
    // Paper: 1860 HCTs with SAR ADCs, 1660 with ramp, in 2.57 cm^2.
    AreaModel a;
    const std::size_t sar = a.isoAreaHctCount(analog::AdcKind::Sar, 8);
    const std::size_t ramp =
        a.isoAreaHctCount(analog::AdcKind::Ramp, 1);
    EXPECT_NEAR(static_cast<double>(sar), 1860.0, 120.0);
    EXPECT_NEAR(static_cast<double>(ramp), 1660.0, 160.0);
    EXPECT_GT(sar, ramp);
}

TEST(ChipModel, CapacityNearPaper)
{
    // Paper: 4.1 GB (SAR) / 3.7 GB (ramp).
    ChipModel sar;
    sar.adc = analog::AdcKind::Sar;
    EXPECT_NEAR(sar.capacityBytes() / 1e9, 4.1, 0.4);
    ChipModel ramp;
    ramp.adc = analog::AdcKind::Ramp;
    EXPECT_NEAR(ramp.capacityBytes() / 1e9, 3.7, 0.4);
    EXPECT_GT(sar.capacityBytes(), ramp.capacityBytes());
}

TEST(PowerModel, FrontEndShare)
{
    PowerModel p;
    // 63 mW shared by 8 HCTs at 1 GHz = 7.875 pJ/cycle/HCT.
    EXPECT_NEAR(p.frontEndEnergyPJ(1), 7.875, 1e-9);
    EXPECT_NEAR(p.frontEndEnergyPJ(1000), 7875.0, 1e-6);
}

TEST(PowerModel, Table3Defaults)
{
    PowerModel p;
    EXPECT_DOUBLE_EQ(p.arrayBoolOpPJ, 8.0);
    EXPECT_DOUBLE_EQ(p.sarAdcPJ, 1.5);
    EXPECT_DOUBLE_EQ(p.rampAdcPerCyclePJ, 1.2);
    EXPECT_DOUBLE_EQ(p.rowPeripheryPJ, 0.7);
}

} // namespace
} // namespace model
} // namespace darth
