/**
 * @file
 * Tests for the process-wide compiled-kernel cache: truth-table
 * compilation must be a bit-exact stand-in for interpreting the
 * synthesized gate program (every macro kind, both logic families,
 * all widths), the non-SSA conservative fallback must refuse to
 * compile, and the cache's hit/miss counters must move.
 */

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "digital/KernelCache.h"
#include "digital/Pipeline.h"
#include "digital/Synthesis.h"

namespace darth
{
namespace digital
{
namespace
{

const MacroKind kAllMacros[] = {
    MacroKind::Not,  MacroKind::Copy, MacroKind::And,
    MacroKind::Or,   MacroKind::Nor,  MacroKind::Nand,
    MacroKind::Xor,  MacroKind::Xnor, MacroKind::Add,
    MacroKind::Sub,  MacroKind::Mux,
};

class KernelCacheTest : public ::testing::TestWithParam<LogicFamilyKind>
{
};

/**
 * Every synthesized macro compiles (the library programs are all
 * SSA-pure) and the compiled word-parallel evaluation matches the
 * interpreter lane for lane. The three operand words below place
 * every (a, b, cin) minterm combination in some lane, so the 64
 * lanes jointly cover the whole truth table.
 */
TEST_P(KernelCacheTest, CompiledMatchesInterpreterEveryMacro)
{
    const LogicFamily family(GetParam());
    const u64 wa = 0xF0F0F0F0F0F0F0F0ULL;
    const u64 wb = 0xCCCCCCCCCCCCCCCCULL;
    const u64 wc = 0xAAAAAAAAAAAAAAAAULL;
    for (MacroKind kind : kAllMacros) {
        const BitProgram program = synthesizeMacro(kind, family);
        const CompiledKernel kernel = KernelCache::compile(program);
        ASSERT_TRUE(kernel.valid) << macroName(kind);
        EXPECT_EQ(kernel.hasCarry, program.hasCarryChain())
            << macroName(kind);
        const u64 wr = kernel.evalResult(wa, wb, wc);
        const u64 wcout =
            kernel.hasCarry ? kernel.evalCarry(wa, wb, wc) : 0;
        for (int lane = 0; lane < 64; ++lane) {
            const bool a = (wa >> lane) & 1;
            const bool b = (wb >> lane) & 1;
            const bool c = (wc >> lane) & 1;
            bool cout = false;
            const bool r = program.evaluate(a, b, c, &cout);
            EXPECT_EQ((wr >> lane) & 1, static_cast<u64>(r))
                << macroName(kind) << " lane " << lane;
            if (kernel.hasCarry)
                EXPECT_EQ((wcout >> lane) & 1, static_cast<u64>(cout))
                    << macroName(kind) << " carry lane " << lane;
        }
    }
}

/**
 * Word-parallel carry chaining through the compiled kernel: running
 * evalResult/evalCarry across bit positions with 64 independent
 * lanes must reproduce native 8-bit add/sub per lane. This is the
 * equivalence the compiled MVM reduction rests on.
 */
TEST_P(KernelCacheTest, ChainedAddSubMatchNativeArithmetic)
{
    const LogicFamily family(GetParam());
    for (MacroKind kind : {MacroKind::Add, MacroKind::Sub}) {
        const BitProgram program = synthesizeMacro(kind, family);
        const CompiledKernel kernel = KernelCache::compile(program);
        ASSERT_TRUE(kernel.valid);
        ASSERT_TRUE(kernel.hasCarry);

        constexpr int kBits = 8;
        // 64 lanes of deterministic operand pairs.
        u64 a_val[64], b_val[64];
        for (int lane = 0; lane < 64; ++lane) {
            a_val[lane] = (static_cast<u64>(lane) * 37 + 11) & 0xFF;
            b_val[lane] = (static_cast<u64>(lane) * 101 + 3) & 0xFF;
        }
        // Transpose into bit-plane words.
        u64 a_bits[kBits] = {}, b_bits[kBits] = {};
        for (int bit = 0; bit < kBits; ++bit)
            for (int lane = 0; lane < 64; ++lane) {
                a_bits[bit] |= ((a_val[lane] >> bit) & 1ULL) << lane;
                b_bits[bit] |= ((b_val[lane] >> bit) & 1ULL) << lane;
            }
        u64 carry = initialCarry(kind) ? ~0ULL : 0ULL;
        u64 result[kBits];
        for (int bit = 0; bit < kBits; ++bit) {
            result[bit] =
                kernel.evalResult(a_bits[bit], b_bits[bit], carry);
            carry = kernel.evalCarry(a_bits[bit], b_bits[bit], carry);
        }
        for (int lane = 0; lane < 64; ++lane) {
            u64 got = 0;
            for (int bit = 0; bit < kBits; ++bit)
                got |= ((result[bit] >> lane) & 1ULL) << bit;
            EXPECT_EQ(got, referenceMacro(kind, a_val[lane],
                                          b_val[lane], kBits))
                << macroName(kind) << " lane " << lane;
        }
    }
}

/**
 * Pipeline-level sweep across register widths below the 64-element
 * word: the compiled kernel evaluates full words, so the pipeline's
 * width mask must confine effects to the live elements. Covers
 * width = 1 (single live lane), an odd width, and the full word.
 */
TEST_P(KernelCacheTest, PipelineWidthMaskingBelowFullWord)
{
    constexpr int kBits = 8;
    for (std::size_t width : {std::size_t{1}, std::size_t{5},
                              std::size_t{63}, std::size_t{64}}) {
        PipelineConfig cfg;
        cfg.depth = kBits;
        cfg.width = width;
        cfg.numRegs = 8;
        cfg.family = GetParam();
        Pipeline pipe(cfg);

        std::vector<u64> a(width), b(width);
        for (std::size_t e = 0; e < width; ++e) {
            a[e] = (e * 29 + 5) & 0xFF;
            b[e] = (e * 67 + 17) & 0xFF;
        }
        for (MacroKind kind :
             {MacroKind::Xor, MacroKind::And, MacroKind::Add,
              MacroKind::Sub}) {
            pipe.setElements(0, a.data(), width, kBits);
            pipe.setElements(1, b.data(), width, kBits);
            pipe.execMacro(kind, 2, 0, 1, kBits, 0);
            std::vector<u64> out(width, 0);
            pipe.elements(2, out.data(), width, kBits);
            for (std::size_t e = 0; e < width; ++e)
                EXPECT_EQ(out[e],
                          referenceMacro(kind, a[e], b[e], kBits))
                    << macroName(kind) << " width " << width
                    << " elem " << e;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, KernelCacheTest,
                         ::testing::Values(LogicFamilyKind::Oscar,
                                           LogicFamilyKind::Ideal));

/**
 * A program that reads a scratch register before writing it is not a
 * pure function of (a, b, cin) under the interpreter's persistent-
 * scratch semantics; compile() must refuse it so the interpreter
 * stays the executor.
 */
TEST(KernelCacheCompile, NonSsaProgramFallsBackToInterpreter)
{
    BitProgram program;
    program.numRegs = kFirstScratch + 1;
    // Reads scratch reg 4 before any op writes it.
    program.ops.push_back(
        GateOp{Prim::Or, kFirstScratch, kFirstScratch, kRegA});
    program.resultReg = kFirstScratch;
    const CompiledKernel kernel = KernelCache::compile(program);
    EXPECT_FALSE(kernel.valid);
}

/**
 * Counter movement on the shared instance. The cache is process-wide
 * and other tests may already have populated any key, so assert
 * deltas only: a repeated lookup is a guaranteed hit and never a
 * miss.
 */
TEST(KernelCacheCounters, RepeatLookupHitsWithoutMissing)
{
    KernelCache &cache = KernelCache::instance();
    // Ensure the entry exists (may or may not count a miss).
    cache.macro(MacroKind::Add, LogicFamilyKind::Oscar);
    const u64 hits_before = cache.hits();
    const u64 misses_before = cache.misses();
    const KernelCache::Entry &entry =
        cache.macro(MacroKind::Add, LogicFamilyKind::Oscar);
    EXPECT_TRUE(entry.kernel.valid);
    EXPECT_EQ(cache.hits(), hits_before + 1);
    EXPECT_EQ(cache.misses(), misses_before);
    // Stable reference: a second lookup returns the same entry.
    EXPECT_EQ(&cache.macro(MacroKind::Add, LogicFamilyKind::Oscar),
              &entry);
}

} // namespace
} // namespace digital
} // namespace darth
