/**
 * @file
 * Unit tests for macro synthesis: functional correctness of the
 * full-adder chains and cost relationships between logic families.
 */

#include <gtest/gtest.h>

#include "digital/Synthesis.h"

namespace darth
{
namespace digital
{
namespace
{

/** Evaluate a carry-chained macro over `bits` bit positions. */
u64
runChained(const BitProgram &program, u64 a, u64 b, int bits,
           bool carry_in)
{
    u64 result = 0;
    bool carry = carry_in;
    for (int i = 0; i < bits; ++i) {
        bool cout = false;
        const bool r = program.evaluate((a >> i) & 1, (b >> i) & 1,
                                        carry, &cout);
        result |= static_cast<u64>(r) << i;
        carry = cout;
    }
    return result;
}

class AdderTest : public ::testing::TestWithParam<LogicFamilyKind>
{
};

TEST_P(AdderTest, FullAdderTruthTable)
{
    LogicFamily family(GetParam());
    const BitProgram fa = synthesizeMacro(MacroKind::Add, family);
    ASSERT_TRUE(fa.hasCarryChain());
    for (int a = 0; a <= 1; ++a)
        for (int b = 0; b <= 1; ++b)
            for (int c = 0; c <= 1; ++c) {
                bool cout = false;
                const bool sum = fa.evaluate(a, b, c, &cout);
                EXPECT_EQ(sum, (a + b + c) & 1);
                EXPECT_EQ(cout, (a + b + c) >= 2);
            }
}

TEST_P(AdderTest, EightBitAdditionSweep)
{
    LogicFamily family(GetParam());
    const BitProgram fa = synthesizeMacro(MacroKind::Add, family);
    for (u64 a = 0; a < 256; a += 7)
        for (u64 b = 0; b < 256; b += 11)
            EXPECT_EQ(runChained(fa, a, b, 8, false), (a + b) & 0xFF);
}

TEST_P(AdderTest, SubtractionSweep)
{
    LogicFamily family(GetParam());
    const BitProgram fs = synthesizeMacro(MacroKind::Sub, family);
    ASSERT_TRUE(fs.hasCarryChain());
    EXPECT_TRUE(initialCarry(MacroKind::Sub));
    for (u64 a = 0; a < 256; a += 13)
        for (u64 b = 0; b < 256; b += 17)
            EXPECT_EQ(runChained(fs, a, b, 8, true), (a - b) & 0xFF);
}

INSTANTIATE_TEST_SUITE_P(BothFamilies, AdderTest,
                         ::testing::Values(LogicFamilyKind::Oscar,
                                           LogicFamilyKind::Ideal));

TEST(Synthesis, OscarAdderCost)
{
    LogicFamily oscar(LogicFamilyKind::Oscar);
    const BitProgram fa = synthesizeMacro(MacroKind::Add, oscar);
    EXPECT_EQ(fa.opCount(), 11u);
}

TEST(Synthesis, IdealAdderCost)
{
    LogicFamily ideal(LogicFamilyKind::Ideal);
    const BitProgram fa = synthesizeMacro(MacroKind::Add, ideal);
    EXPECT_EQ(fa.opCount(), 5u);
}

TEST(Synthesis, IdealBeatsOscarOnEveryMacro)
{
    LogicFamily oscar(LogicFamilyKind::Oscar);
    LogicFamily ideal(LogicFamilyKind::Ideal);
    for (MacroKind kind :
         {MacroKind::Not, MacroKind::And, MacroKind::Xor, MacroKind::Xnor,
          MacroKind::Nand, MacroKind::Add, MacroKind::Sub,
          MacroKind::Mux}) {
        EXPECT_LE(synthesizeMacro(kind, ideal).opCount(),
                  synthesizeMacro(kind, oscar).opCount())
            << macroName(kind);
    }
}

TEST(Synthesis, AdderFamilyGapNearPaperRatio)
{
    // Figure 7 reports ~2.1x throughput from the ideal logic family
    // for digital PUM; the ADD gate-count ratio is the dominant term.
    LogicFamily oscar(LogicFamilyKind::Oscar);
    LogicFamily ideal(LogicFamilyKind::Ideal);
    const double ratio =
        static_cast<double>(
            synthesizeMacro(MacroKind::Add, oscar).opCount()) /
        static_cast<double>(
            synthesizeMacro(MacroKind::Add, ideal).opCount());
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.6);
}

TEST(Synthesis, MuxSelectsBetweenOperands)
{
    for (LogicFamilyKind kind :
         {LogicFamilyKind::Oscar, LogicFamilyKind::Ideal}) {
        LogicFamily family(kind);
        const BitProgram mux = synthesizeMacro(MacroKind::Mux, family);
        for (int a = 0; a <= 1; ++a)
            for (int b = 0; b <= 1; ++b) {
                EXPECT_EQ(mux.evaluate(a, b, false), a != 0);
                EXPECT_EQ(mux.evaluate(a, b, true), b != 0);
            }
    }
}

TEST(Synthesis, ReferenceMacroSemantics)
{
    EXPECT_EQ(referenceMacro(MacroKind::Add, 200, 100, 8), 44u);
    EXPECT_EQ(referenceMacro(MacroKind::Sub, 5, 10, 8), 251u);
    EXPECT_EQ(referenceMacro(MacroKind::Xor, 0xF0, 0xFF, 8), 0x0Fu);
    EXPECT_EQ(referenceMacro(MacroKind::Not, 0x0F, 0, 8), 0xF0u);
    EXPECT_EQ(referenceMacro(MacroKind::Copy, 0xAB, 0, 8), 0xABu);
    EXPECT_EQ(referenceMacro(MacroKind::Nor, 0x0F, 0x33, 8), 0xC0u);
}

TEST(Synthesis, BitwiseMacrosMatchReferenceViaPrograms)
{
    for (LogicFamilyKind kind :
         {LogicFamilyKind::Oscar, LogicFamilyKind::Ideal}) {
        LogicFamily family(kind);
        for (MacroKind macro :
             {MacroKind::And, MacroKind::Or, MacroKind::Nor,
              MacroKind::Nand, MacroKind::Xor, MacroKind::Xnor}) {
            const BitProgram p = synthesizeMacro(macro, family);
            for (u64 a = 0; a < 16; ++a)
                for (u64 b = 0; b < 16; ++b) {
                    u64 result = 0;
                    for (int i = 0; i < 4; ++i)
                        result |= static_cast<u64>(p.evaluate(
                                      (a >> i) & 1, (b >> i) & 1,
                                      false))
                                  << i;
                    EXPECT_EQ(result,
                              referenceMacro(macro, a, b, 4))
                        << macroName(macro);
                }
        }
    }
}

} // namespace
} // namespace digital
} // namespace darth
