/**
 * @file
 * Unit tests for the Digital Compute Element.
 */

#include <gtest/gtest.h>

#include "digital/Dce.h"

namespace darth
{
namespace digital
{
namespace
{

DceConfig
smallDce()
{
    DceConfig cfg;
    cfg.numPipelines = 4;
    cfg.pipeline.depth = 8;
    cfg.pipeline.width = 8;
    cfg.pipeline.numRegs = 8;
    return cfg;
}

TEST(Dce, ConstructsPipelines)
{
    Dce dce(smallDce());
    EXPECT_EQ(dce.numPipelines(), 4u);
}

TEST(Dce, PipelinesAreIndependent)
{
    Dce dce(smallDce());
    dce.pipeline(0).setElement(0, 0, 0xAB);
    EXPECT_EQ(dce.pipeline(0).element(0, 0, 8), 0xABull);
    EXPECT_EQ(dce.pipeline(1).element(0, 0, 8), 0u);
}

TEST(Dce, ExecMacroAllRunsConcurrently)
{
    Dce dce(smallDce());
    for (std::size_t p = 0; p < 4; ++p) {
        dce.pipeline(p).setElement(0, 0, 10 + p);
        dce.pipeline(p).setElement(1, 0, 1);
    }
    const Cycle all_done =
        dce.execMacroAll(MacroKind::Add, 0, 4, 2, 0, 1, 8, 0);
    for (std::size_t p = 0; p < 4; ++p)
        EXPECT_EQ(dce.pipeline(p).element(2, 0, 8), 11 + p);
    // Concurrent pipelines: total time equals a single pipeline's time.
    Dce single(smallDce());
    single.pipeline(0).setElement(0, 0, 10);
    single.pipeline(0).setElement(1, 0, 1);
    const Cycle one_done =
        single.pipeline(0).execMacro(MacroKind::Add, 2, 0, 1, 8, 0);
    EXPECT_EQ(all_done, one_done);
}

TEST(Dce, OpCountAggregates)
{
    Dce dce(smallDce());
    dce.execMacroAll(MacroKind::Xor, 0, 4, 2, 0, 1, 8, 0);
    EXPECT_EQ(dce.opCount(),
              4u * dce.pipeline(0).opCount());
}

TEST(Dce, SharedTallyAccumulatesAcrossPipelines)
{
    CostTally tally;
    Dce dce(smallDce(), &tally);
    dce.execMacroAll(MacroKind::Xor, 0, 4, 2, 0, 1, 8, 0);
    EXPECT_EQ(tally.get("dce.boolop").events, dce.opCount());
}

TEST(DceDeath, OutOfRangePipelinePanics)
{
    Dce dce(smallDce());
    EXPECT_DEATH(dce.pipeline(4), "out of range");
}

} // namespace
} // namespace digital
} // namespace darth
