/**
 * @file
 * Unit tests for the RACER pipeline: functional macro results, timing
 * behaviour (bit-pipelining, carry serialization), row I/O, shifts,
 * rotation, and the DARTH-PUM element-wise load/store extension.
 */

#include <gtest/gtest.h>

#include "digital/Pipeline.h"

namespace darth
{
namespace digital
{
namespace
{

PipelineConfig
smallConfig(LogicFamilyKind family = LogicFamilyKind::Oscar)
{
    PipelineConfig cfg;
    cfg.depth = 16;
    cfg.width = 8;
    cfg.numRegs = 8;
    cfg.family = family;
    return cfg;
}

TEST(Pipeline, ElementRoundTrip)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(2, 3, 0xBEEF);
    EXPECT_EQ(pipe.element(2, 3, 16), 0xBEEFull);
    EXPECT_EQ(pipe.element(2, 3, 8), 0xEFull);
}

TEST(Pipeline, ClearReg)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(1, 0, 0xFFFF);
    pipe.clearReg(1);
    EXPECT_EQ(pipe.element(1, 0, 16), 0u);
}

TEST(Pipeline, AddAllElements)
{
    Pipeline pipe(smallConfig());
    for (std::size_t e = 0; e < 8; ++e) {
        pipe.setElement(0, e, 100 * e + 1);
        pipe.setElement(1, e, 7 * e + 3);
    }
    pipe.execMacro(MacroKind::Add, 2, 0, 1, 16, 0);
    for (std::size_t e = 0; e < 8; ++e)
        EXPECT_EQ(pipe.element(2, e, 16), (100 * e + 1) + (7 * e + 3));
}

TEST(Pipeline, SubWrapsTwosComplement)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 5);
    pipe.setElement(1, 0, 10);
    pipe.execMacro(MacroKind::Sub, 2, 0, 1, 16, 0);
    EXPECT_EQ(pipe.element(2, 0, 16), (5 - 10) & 0xFFFFull);
}

TEST(Pipeline, XorAndOrNot)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0xF0F0);
    pipe.setElement(1, 0, 0xFF00);
    pipe.execMacro(MacroKind::Xor, 2, 0, 1, 16, 0);
    pipe.execMacro(MacroKind::And, 3, 0, 1, 16, 0);
    pipe.execMacro(MacroKind::Or, 4, 0, 1, 16, 0);
    pipe.execMacro(MacroKind::Not, 5, 0, 0, 16, 0);
    EXPECT_EQ(pipe.element(2, 0, 16), 0x0FF0ull);
    EXPECT_EQ(pipe.element(3, 0, 16), 0xF000ull);
    EXPECT_EQ(pipe.element(4, 0, 16), 0xFFF0ull);
    EXPECT_EQ(pipe.element(5, 0, 16), 0x0F0Full);
}

TEST(Pipeline, IndependentMacrosPipelineOverlap)
{
    // Two independent XORs on an empty pipeline: the second's stage 0
    // starts as soon as the first vacates it, so total time is far
    // less than 2x a single macro.
    Pipeline pipe(smallConfig());
    const Cycle t1 = pipe.execMacro(MacroKind::Xor, 2, 0, 1, 16, 0);
    const Cycle t2 = pipe.execMacro(MacroKind::Xor, 3, 0, 1, 16, 0);
    EXPECT_LT(t2, 2 * t1);
    const BitProgram p = synthesizeMacro(
        MacroKind::Xor, LogicFamily(LogicFamilyKind::Oscar));
    EXPECT_EQ(t2, t1 + p.opCount());
}

TEST(Pipeline, CarryChainSerializesStages)
{
    // ADD latency grows ~linearly with bit count because of the
    // ripple carry; XOR grows with bits only through the 1-cycle
    // control handoff.
    Pipeline pipe(smallConfig());
    const Cycle add_done = pipe.execMacro(MacroKind::Add, 2, 0, 1, 16, 0);
    Pipeline pipe2(smallConfig());
    const Cycle xor_done =
        pipe2.execMacro(MacroKind::Xor, 2, 0, 1, 16, 0);
    EXPECT_GT(add_done, 3 * xor_done);
    // 16 bits x 11 ops, fully serialized.
    EXPECT_EQ(add_done, 16u * 11u);
}

TEST(Pipeline, IdealFamilyFasterThanOscar)
{
    Pipeline oscar(smallConfig(LogicFamilyKind::Oscar));
    Pipeline ideal(smallConfig(LogicFamilyKind::Ideal));
    const Cycle t_oscar = oscar.execMacro(MacroKind::Add, 2, 0, 1, 16, 0);
    const Cycle t_ideal = ideal.execMacro(MacroKind::Add, 2, 0, 1, 16, 0);
    EXPECT_GT(static_cast<double>(t_oscar) /
                  static_cast<double>(t_ideal),
              1.8);
}

TEST(Pipeline, SelectImplementsRelu)
{
    // ReLU: select 0 where the sign bit (bit 15) is set.
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0x8005);   // negative 16-bit value
    pipe.setElement(0, 1, 0x0005);   // positive
    pipe.clearReg(1);                // zeros
    pipe.execSelect(2, 0, 1, 0, 15, 16, 0);
    EXPECT_EQ(pipe.element(2, 0, 16), 0u);
    EXPECT_EQ(pipe.element(2, 1, 16), 0x0005ull);
}

TEST(Pipeline, ShiftUpMultiplies)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0x0021);
    pipe.execShift(1, 0, 3, true, 16, 0);
    EXPECT_EQ(pipe.element(1, 0, 16), 0x0021ull << 3);
}

TEST(Pipeline, ShiftDownDivides)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0x8400);
    pipe.execShift(1, 0, 2, false, 16, 0);
    EXPECT_EQ(pipe.element(1, 0, 16), 0x8400ull >> 2);
}

TEST(Pipeline, ShiftInPlace)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0x0101);
    pipe.execShift(0, 0, 1, true, 16, 0);
    EXPECT_EQ(pipe.element(0, 0, 16), 0x0202ull);
}

TEST(Pipeline, RotatePerformsCyclicShift)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, 0xABCD);
    pipe.execRotate(0, 4, 16, 0);
    EXPECT_EQ(pipe.element(0, 0, 16), 0xBCDAull);
}

TEST(Pipeline, RotateCostsIncludeDrain)
{
    // The reversal macro must drain the pipeline first (§5.3), so it
    // is much more expensive than a plain shift.
    Pipeline a(smallConfig());
    const Cycle shift_done = a.execShift(1, 0, 4, true, 16, 0);
    Pipeline b(smallConfig());
    const Cycle rot_done = b.execRotate(0, 4, 16, 0);
    EXPECT_GT(rot_done, shift_done);
}

TEST(Pipeline, WriteRowWithShiftUnitOffset)
{
    // The ACE->DCE shift units place partial products pre-shifted:
    // writing value v at lo_bit=k equals storing v << k.
    Pipeline pipe(smallConfig());
    pipe.writeRow(0, 2, 0x5, 3, 8, 0);
    EXPECT_EQ(pipe.element(0, 2, 16), 0x5ull << 3);
}

TEST(Pipeline, WriteRowOneCyclePerRow)
{
    Pipeline pipe(smallConfig());
    Cycle t = 0;
    for (std::size_t e = 0; e < 8; ++e)
        t = pipe.writeRow(0, e, e, 0, 8, t);
    EXPECT_EQ(t, 8u);
}

TEST(Pipeline, ReadRowMatchesSetElement)
{
    Pipeline pipe(smallConfig());
    pipe.setElement(3, 5, 0x1234);
    EXPECT_EQ(pipe.readRow(3, 5, 0), 0x1234ull);
}

TEST(Pipeline, ElementLoadGathersFromTable)
{
    // Table pipeline stores a lookup table across rows/registers;
    // the compute pipeline gathers entries by per-element address.
    PipelineConfig cfg = smallConfig();
    Pipeline table(cfg);
    Pipeline compute(cfg);
    // Table: entry t = t * 3, spread over registers 0.. (width = 8).
    for (u64 t = 0; t < 16; ++t)
        table.setElement(t / 8, t % 8, t * 3);
    for (std::size_t e = 0; e < 8; ++e)
        compute.setElement(0, e, (e * 2 + 1) % 16);   // addresses
    compute.elementLoad(1, 0, table, 0, 8, 0);
    for (std::size_t e = 0; e < 8; ++e)
        EXPECT_EQ(compute.element(1, e, 8), ((e * 2 + 1) % 16) * 3);
}

TEST(Pipeline, ElementLoadCostThreeCyclesPerElement)
{
    PipelineConfig cfg = smallConfig();
    Pipeline table(cfg);
    Pipeline compute(cfg);
    const Cycle done = compute.elementLoad(1, 0, table, 0, 8, 0);
    EXPECT_EQ(done, 3u * cfg.width);
}

TEST(Pipeline, ElementStoreScattersToTable)
{
    PipelineConfig cfg = smallConfig();
    Pipeline table(cfg);
    Pipeline compute(cfg);
    for (std::size_t e = 0; e < 8; ++e) {
        compute.setElement(0, e, e);         // addresses: identity
        compute.setElement(1, e, 100 + e);   // data
    }
    compute.elementStore(1, 0, table, 2, 8, 0);
    for (std::size_t e = 0; e < 8; ++e)
        EXPECT_EQ(table.element(2, e, 8), 100 + e);
}

TEST(Pipeline, CostTallyRecordsOpsAndEnergy)
{
    CostTally tally;
    PipelineConfig cfg = smallConfig();
    Pipeline pipe(cfg, &tally);
    pipe.execMacro(MacroKind::Add, 2, 0, 1, 16, 0);
    const CostEntry ops = tally.get("dce.boolop");
    EXPECT_EQ(ops.events, 16u * 11u);
    EXPECT_DOUBLE_EQ(ops.energy, 16.0 * 11.0 * cfg.opEnergyPJ);
}

TEST(PipelineDeath, BadRegisterPanics)
{
    Pipeline pipe(smallConfig());
    EXPECT_DEATH(pipe.setElement(99, 0, 0), "out of range");
    EXPECT_DEATH(pipe.execMacro(MacroKind::Add, 0, 99, 1, 8, 0),
                 "out of range");
}

TEST(PipelineDeath, TooManyBitsPanics)
{
    Pipeline pipe(smallConfig());
    EXPECT_DEATH(pipe.execMacro(MacroKind::Add, 0, 1, 2, 17, 0),
                 "exceeds depth");
}

TEST(PipelineDeath, WideWidthIsFatal)
{
    PipelineConfig cfg = smallConfig();
    cfg.width = 65;
    EXPECT_THROW(Pipeline{cfg}, std::runtime_error);
}

/** Property sweep: pipeline arithmetic matches integer semantics. */
class PipelineMacroProperty
    : public ::testing::TestWithParam<std::tuple<MacroKind, u64, u64>>
{
};

TEST_P(PipelineMacroProperty, MatchesReference)
{
    const auto [kind, a, b] = GetParam();
    Pipeline pipe(smallConfig());
    pipe.setElement(0, 0, a);
    pipe.setElement(1, 0, b);
    pipe.execMacro(kind, 2, 0, 1, 16, 0);
    EXPECT_EQ(pipe.element(2, 0, 16),
              referenceMacro(kind, a, b, 16));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineMacroProperty,
    ::testing::Combine(
        ::testing::Values(MacroKind::Add, MacroKind::Sub, MacroKind::Xor,
                          MacroKind::And, MacroKind::Or, MacroKind::Nor),
        ::testing::Values(u64{0}, u64{1}, u64{0xFF}, u64{0x8000},
                          u64{0xFFFF}, u64{0x1234}),
        ::testing::Values(u64{0}, u64{1}, u64{0x00FF}, u64{0xFFFF},
                          u64{0xABCD})));

} // namespace
} // namespace digital
} // namespace darth
