/**
 * @file
 * Unit tests for the device-backed DigitalArray: column ops on real
 * cell models, bit-exactness under SLC noise.
 */

#include <gtest/gtest.h>

#include "digital/DigitalArray.h"

namespace darth
{
namespace digital
{
namespace
{

TEST(DigitalArray, ColumnRoundTrip)
{
    DigitalArray arr(8, 4);
    BitVector bits = BitVector::fromString("10110010");
    arr.writeColumn(1, bits);
    EXPECT_EQ(arr.readColumn(1), bits);
}

TEST(DigitalArray, ColumnNorMatchesBitVector)
{
    DigitalArray arr(16, 4);
    BitVector a = BitVector::fromInteger(0xF0F0, 16);
    BitVector b = BitVector::fromInteger(0xFF00, 16);
    arr.writeColumn(0, a);
    arr.writeColumn(1, b);
    arr.columnNor(2, 0, 1);
    EXPECT_EQ(arr.readColumn(2), a.nor(b));
}

TEST(DigitalArray, ColumnOrMatchesBitVector)
{
    DigitalArray arr(16, 4);
    BitVector a = BitVector::fromInteger(0x00FF, 16);
    BitVector b = BitVector::fromInteger(0x0F0F, 16);
    arr.writeColumn(0, a);
    arr.writeColumn(1, b);
    arr.columnOr(2, 0, 1);
    EXPECT_EQ(arr.readColumn(2), a | b);
}

TEST(DigitalArray, OpCountIncrements)
{
    DigitalArray arr(8, 4);
    EXPECT_EQ(arr.opCount(), 0u);
    arr.columnNor(2, 0, 1);
    arr.columnOr(3, 0, 1);
    EXPECT_EQ(arr.opCount(), 2u);
}

TEST(DigitalArray, BitExactUnderRealisticSlcNoise)
{
    // The paper's premise: digital (SLC) PUM is error-resilient. With
    // the realistic noise corner, read-back must still be exact.
    reram::NoiseModel noise;
    noise.programSigma = 0.03;
    noise.readSigma = 0.01;
    DigitalArray arr(64, 8, noise, 21);
    Rng rng(22);
    for (int trial = 0; trial < 20; ++trial) {
        BitVector a(64), b(64);
        for (std::size_t i = 0; i < 64; ++i) {
            a.set(i, rng.bernoulli(0.5));
            b.set(i, rng.bernoulli(0.5));
        }
        arr.writeColumn(0, a);
        arr.writeColumn(1, b);
        arr.columnNor(2, 0, 1);
        EXPECT_EQ(arr.readColumn(0), a);
        EXPECT_EQ(arr.readColumn(1), b);
        EXPECT_EQ(arr.readColumn(2), a.nor(b));
    }
}

TEST(DigitalArray, StuckCellsCorruptColumns)
{
    // Failure injection: a high stuck-at rate must produce read-back
    // errors, demonstrating the fault model is actually wired in.
    reram::NoiseModel noise;
    noise.stuckAtRate = 0.2;
    DigitalArray arr(64, 2, noise, 23);
    ASSERT_GT(arr.cells().stuckCellCount(), 0u);
    BitVector ones(64, true);
    arr.writeColumn(0, ones);
    // Some stuck-low cell should flip a one to zero (64 cells at 20%
    // stuck gives ~6 stuck-low in the column with high probability).
    EXPECT_LT(arr.readColumn(0).popcount(), 64u);
}

TEST(DigitalArrayDeath, ColumnSizeMismatchPanics)
{
    DigitalArray arr(8, 2);
    EXPECT_DEATH(arr.writeColumn(0, BitVector(4)), "bits for");
}

} // namespace
} // namespace digital
} // namespace darth
