/**
 * @file
 * Unit tests for BitProgram lowering and evaluation.
 */

#include <gtest/gtest.h>

#include "digital/BitProgram.h"

namespace darth
{
namespace digital
{
namespace
{

TEST(LogicFamily, OscarNativePrimitives)
{
    LogicFamily oscar(LogicFamilyKind::Oscar);
    EXPECT_TRUE(oscar.isNative(Prim::Nor));
    EXPECT_TRUE(oscar.isNative(Prim::Or));
    EXPECT_FALSE(oscar.isNative(Prim::And));
    EXPECT_FALSE(oscar.isNative(Prim::Xor));
    EXPECT_FALSE(oscar.isNative(Prim::Not));
}

TEST(LogicFamily, IdealSupportsEverything)
{
    LogicFamily ideal(LogicFamilyKind::Ideal);
    for (Prim p : {Prim::Nor, Prim::Or, Prim::And, Prim::Nand,
                   Prim::Xor, Prim::Xnor, Prim::Not, Prim::Copy})
        EXPECT_TRUE(ideal.isNative(p));
}

TEST(ApplyPrim, TruthTables)
{
    EXPECT_TRUE(applyPrim(Prim::Nor, false, false));
    EXPECT_FALSE(applyPrim(Prim::Nor, true, false));
    EXPECT_TRUE(applyPrim(Prim::Xor, true, false));
    EXPECT_FALSE(applyPrim(Prim::Xor, true, true));
    EXPECT_TRUE(applyPrim(Prim::Nand, true, false));
    EXPECT_FALSE(applyPrim(Prim::Nand, true, true));
    EXPECT_TRUE(applyPrim(Prim::Not, false, false));
    EXPECT_TRUE(applyPrim(Prim::Copy, true, false));
}

/** Lowered programs compute the right truth table for all inputs. */
class LoweringTest
    : public ::testing::TestWithParam<std::tuple<LogicFamilyKind, Prim>>
{
};

TEST_P(LoweringTest, TruthTableMatches)
{
    const auto [kind, prim] = GetParam();
    LogicFamily family(kind);
    BitProgramBuilder builder(family);
    const int result = builder.emit(prim, kRegA, kRegB);
    const BitProgram program = builder.finish(result);
    for (int a = 0; a <= 1; ++a)
        for (int b = 0; b <= 1; ++b)
            EXPECT_EQ(program.evaluate(a, b, false),
                      applyPrim(prim, a, b))
                << primName(prim) << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllFamiliesAllPrims, LoweringTest,
    ::testing::Combine(
        ::testing::Values(LogicFamilyKind::Oscar, LogicFamilyKind::Ideal),
        ::testing::Values(Prim::Nor, Prim::Or, Prim::And, Prim::Nand,
                          Prim::Xor, Prim::Xnor, Prim::Not, Prim::Copy)));

TEST(Lowering, OscarUsesOnlyNativePrims)
{
    LogicFamily oscar(LogicFamilyKind::Oscar);
    BitProgramBuilder builder(oscar);
    const int result = builder.emit(Prim::Xor, kRegA, kRegB);
    const BitProgram program = builder.finish(result);
    for (const auto &op : program.ops)
        EXPECT_TRUE(op.prim == Prim::Nor || op.prim == Prim::Or)
            << "non-native " << primName(op.prim);
}

TEST(Lowering, IdealIsSingleOp)
{
    LogicFamily ideal(LogicFamilyKind::Ideal);
    for (Prim p : {Prim::And, Prim::Xor, Prim::Nand}) {
        BitProgramBuilder builder(ideal);
        const int result = builder.emit(p, kRegA, kRegB);
        EXPECT_EQ(builder.finish(result).opCount(), 1u);
    }
}

TEST(Lowering, OscarXorCostsFiveOps)
{
    // NOR(a,b), NOT a, NOT b, AND, final NOR.
    LogicFamily oscar(LogicFamilyKind::Oscar);
    BitProgramBuilder builder(oscar);
    const int result = builder.emit(Prim::Xor, kRegA, kRegB);
    EXPECT_EQ(builder.finish(result).opCount(), 5u);
}

TEST(BitProgramDeath, EvaluateWithoutResultPanics)
{
    BitProgram p;
    EXPECT_DEATH((void)p.evaluate(false, false, false),
                 "no result register");
}

} // namespace
} // namespace digital
} // namespace darth
