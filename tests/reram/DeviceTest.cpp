/**
 * @file
 * Unit tests for the ReRAM device model.
 */

#include <gtest/gtest.h>

#include "reram/Device.h"

namespace darth
{
namespace reram
{
namespace
{

TEST(DeviceParams, LevelConductances)
{
    DeviceParams p;
    p.gMin = 1e-6;
    p.gMax = 1e-4;
    p.levels = 2;
    EXPECT_DOUBLE_EQ(p.levelConductance(0), 1e-6);
    EXPECT_DOUBLE_EQ(p.levelConductance(1), 1e-4);
}

TEST(DeviceParams, MultiLevelStepsAreUniform)
{
    DeviceParams p;
    p.levels = 4;
    const double step = p.levelStep();
    for (int code = 0; code < 3; ++code)
        EXPECT_NEAR(p.levelConductance(code + 1) -
                        p.levelConductance(code),
                    step, 1e-15);
}

TEST(Device, IdealProgramReadRoundTrip)
{
    DeviceParams p;
    p.levels = 4;
    Device d;
    d.init(p, StuckState::None);
    NoiseModel ideal;
    for (int code = 0; code < 4; ++code) {
        d.program(p, code, ideal, nullptr);
        EXPECT_DOUBLE_EQ(d.conductance(), p.levelConductance(code));
        EXPECT_EQ(d.readCode(p, ideal, nullptr), code);
    }
}

TEST(Device, ProgrammingNoisePerturbsConductance)
{
    DeviceParams p;
    Device d;
    d.init(p, StuckState::None);
    NoiseModel noisy;
    noisy.programSigma = 0.1;
    Rng rng(11);
    d.program(p, 1, noisy, &rng);
    EXPECT_NE(d.conductance(), p.levelConductance(1));
    // Multiplicative noise keeps conductance positive.
    EXPECT_GT(d.conductance(), 0.0);
}

TEST(Device, StuckLowIgnoresProgramming)
{
    DeviceParams p;
    Device d;
    d.init(p, StuckState::StuckLow);
    NoiseModel ideal;
    d.program(p, 1, ideal, nullptr);
    EXPECT_DOUBLE_EQ(d.conductance(), p.gMin);
}

TEST(Device, StuckHighIgnoresProgramming)
{
    DeviceParams p;
    Device d;
    d.init(p, StuckState::StuckHigh);
    NoiseModel ideal;
    d.program(p, 0, ideal, nullptr);
    EXPECT_DOUBLE_EQ(d.conductance(), p.gMax);
}

TEST(Device, ReadNoiseIsZeroMean)
{
    DeviceParams p;
    Device d;
    d.init(p, StuckState::None);
    NoiseModel noisy;
    noisy.readSigma = 0.02;
    Rng rng(12);
    d.program(p, 1, NoiseModel{}, nullptr);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += d.read(p, noisy, &rng);
    EXPECT_NEAR(sum / n, p.gMax, p.gMax * 0.01);
}

TEST(Device, DriftReducesConductance)
{
    DeviceParams p;
    Device d;
    d.init(p, StuckState::None);
    NoiseModel drifty;
    drifty.driftNu = 0.1;
    d.program(p, 1, NoiseModel{}, nullptr);
    const Siemens fresh = d.read(p, drifty, nullptr, 1.0);
    const Siemens aged = d.read(p, drifty, nullptr, 1000.0);
    EXPECT_LT(aged, fresh);
}

TEST(Device, SlcReadCodeRobustToModerateNoise)
{
    // SLC digital PUM stays bit-exact as long as noise is far below
    // half the G_max - G_min gap (the paper's premise for digital
    // error resilience).
    DeviceParams p;
    Device d;
    d.init(p, StuckState::None);
    NoiseModel noisy;
    noisy.programSigma = 0.05;
    noisy.readSigma = 0.02;
    Rng rng(13);
    for (int trial = 0; trial < 2000; ++trial) {
        const int code = trial % 2;
        d.program(p, code, noisy, &rng);
        EXPECT_EQ(d.readCode(p, noisy, &rng), code);
    }
}

TEST(NoiseModel, IdealDetection)
{
    NoiseModel nm;
    EXPECT_TRUE(nm.ideal());
    nm.readSigma = 0.01;
    EXPECT_FALSE(nm.ideal());
    EXPECT_FALSE(NoiseModel::realistic().ideal());
}

} // namespace
} // namespace reram
} // namespace darth
