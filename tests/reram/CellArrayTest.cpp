/**
 * @file
 * Unit tests for CellArray.
 */

#include <gtest/gtest.h>

#include "reram/CellArray.h"

namespace darth
{
namespace reram
{
namespace
{

TEST(CellArray, Geometry)
{
    CellArray arr(64, 64);
    EXPECT_EQ(arr.rows(), 64u);
    EXPECT_EQ(arr.cols(), 64u);
}

TEST(CellArray, ProgramReadRoundTripIdeal)
{
    CellArray arr(8, 8);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            arr.program(r, c, static_cast<int>((r + c) % 2));
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(arr.readCode(r, c), static_cast<int>((r + c) % 2));
}

TEST(CellArray, ProgramMatrix)
{
    CellArray arr(4, 4);
    MatrixI codes(4, 4);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            codes(r, c) = static_cast<i64>((r * 4 + c) % 2);
    arr.programMatrix(codes);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_EQ(arr.programmedCode(r, c),
                      static_cast<int>(codes(r, c)));
}

TEST(CellArray, ConductanceMatrixShape)
{
    CellArray arr(3, 5);
    const MatrixD g = arr.conductanceMatrix();
    EXPECT_EQ(g.rows(), 3u);
    EXPECT_EQ(g.cols(), 5u);
}

TEST(CellArray, ProgramCountAccumulates)
{
    CellArray arr(2, 2);
    EXPECT_EQ(arr.programCount(), 0u);
    arr.program(0, 0, 1);
    arr.program(1, 1, 0);
    EXPECT_EQ(arr.programCount(), 2u);
}

TEST(CellArray, StuckAtFaultsAppearAtConfiguredRate)
{
    NoiseModel noisy;
    noisy.stuckAtRate = 0.05;
    CellArray arr(128, 128, DeviceParams{}, noisy, 99);
    const double rate = static_cast<double>(arr.stuckCellCount()) /
                        static_cast<double>(arr.rows() * arr.cols());
    EXPECT_NEAR(rate, 0.05, 0.015);
}

TEST(CellArray, NoStuckCellsWhenIdeal)
{
    CellArray arr(64, 64);
    EXPECT_EQ(arr.stuckCellCount(), 0u);
}

TEST(CellArray, MlcRoundTripIdeal)
{
    DeviceParams p;
    p.levels = 16;
    CellArray arr(8, 8, p);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            arr.program(r, c, static_cast<int>((r * 8 + c) % 16));
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(arr.readCode(r, c),
                      static_cast<int>((r * 8 + c) % 16));
}

TEST(CellArrayDeath, BadLevelCodePanics)
{
    CellArray arr(2, 2);
    EXPECT_DEATH(arr.program(0, 0, 2), "level code");
    EXPECT_DEATH(arr.program(0, 0, -1), "level code");
}

TEST(CellArrayDeath, OutOfRangeCellPanics)
{
    CellArray arr(2, 2);
    EXPECT_DEATH(arr.program(2, 0, 1), "out of range");
}

TEST(CellArrayDeath, ZeroSizeIsFatal)
{
    EXPECT_THROW(CellArray(0, 4), std::runtime_error);
}

TEST(CellArray, DeterministicAcrossSeeds)
{
    NoiseModel noisy;
    noisy.programSigma = 0.05;
    CellArray a(16, 16, DeviceParams{}, noisy, 7);
    CellArray b(16, 16, DeviceParams{}, noisy, 7);
    for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 16; ++c) {
            a.program(r, c, 1);
            b.program(r, c, 1);
        }
    for (std::size_t r = 0; r < 16; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            EXPECT_DOUBLE_EQ(a.readConductance(r, c),
                             b.readConductance(r, c));
}

} // namespace
} // namespace reram
} // namespace darth
