/**
 * @file
 * Tests for the comparison-system models: sanity of rates, energy,
 * and the orderings the paper's evaluation depends on.
 */

#include <gtest/gtest.h>

#include "apps/cnn/Resnet20.h"
#include "apps/llm/Encoder.h"
#include "baselines/Systems.h"

namespace darth
{
namespace baselines
{
namespace
{

BaselineSystem
makeBaseline()
{
    return BaselineSystem(CpuParams::i7_13700(), AnalogAccelParams{},
                          LinkParams{});
}

TEST(CpuModel, AesNiMuchFasterThanSoftware)
{
    CpuModel cpu(CpuParams::i7_13700());
    EXPECT_GT(cpu.aesNiBlocksPerSec(), 5.0 * cpu.aesSwBlocksPerSec());
    EXPECT_LT(cpu.aesNiJoulesPerBlock(), cpu.aesSwJoulesPerBlock());
}

TEST(CpuModel, RatesArePositiveAndOrdered)
{
    CpuModel cpu(CpuParams::i7_13700());
    // Element-wise kernels are DRAM-bound; GEMMs are compute-bound.
    EXPECT_GT(cpu.vectorOpsPerSec(), 1e10);
    EXPECT_GT(cpu.macsPerSec(), 1e11);
    EXPECT_GT(cpu.macsPerSec(), cpu.vectorOpsPerSec());
}

TEST(CpuModel, ArmMotivationConfig)
{
    CpuModel arm(CpuParams::arm8());
    CpuModel intel(CpuParams::i7_13700());
    EXPECT_LT(arm.macsPerSec(), intel.macsPerSec());
}

TEST(AnalogAccelModel, MvmScalesWithShapeAndBits)
{
    AnalogAccelModel accel(AnalogAccelParams{});
    EXPECT_GT(accel.mvmSeconds(64, 64, 8),
              accel.mvmSeconds(32, 32, 8));
    EXPECT_GT(accel.mvmSeconds(32, 32, 8),
              accel.mvmSeconds(32, 32, 1));
    EXPECT_GT(accel.macsPerSec(1), accel.macsPerSec(8));
}

TEST(BaselineSystem, AesBreakdownDominatedByOffload)
{
    const auto bd = makeBaseline().aesBreakdownNs();
    EXPECT_GT(bd.total(), 0.0);
    // Figure 14: data movement + MixColumns dominate the Baseline.
    EXPECT_GT(bd.dataMovement + bd.mixColumns, bd.total() * 0.5);
}

TEST(BaselineSystem, AesThroughputAndEnergyPositive)
{
    const auto baseline = makeBaseline();
    EXPECT_GT(baseline.aesBlocksPerSec(), 1e5);
    EXPECT_GT(baseline.aesJoulesPerBlock(), 0.0);
}

TEST(BaselineSystem, CnnLayerCostsAccumulate)
{
    const auto baseline = makeBaseline();
    cnn::Resnet20 net(42);
    const auto layers = net.layerStats();
    double sum = 0.0;
    for (const auto &layer : layers)
        sum += baseline.cnnLayerSeconds(layer);
    EXPECT_NEAR(baseline.cnnInferSeconds(layers), sum, 1e-12);
    EXPECT_GT(baseline.cnnInfersPerSec(layers), 1.0);
    EXPECT_GT(baseline.cnnJoulesPerInfer(layers), 0.0);
}

TEST(BaselineSystem, LlmEncodeCosts)
{
    const auto baseline = makeBaseline();
    llm::Encoder enc{llm::EncoderConfig{}};
    const auto stats = enc.stats();
    EXPECT_GT(baseline.llmEncodesPerSec(stats), 1.0);
    EXPECT_GT(baseline.llmJoulesPerEncode(stats), 0.0);
}

TEST(GpuModel, BeatsBaselineCpuOnMlThroughput)
{
    GpuModel gpu{GpuParams{}};
    const auto baseline = makeBaseline();
    cnn::Resnet20 net(42);
    const auto layers = net.layerStats();
    EXPECT_GT(gpu.cnnInfersPerSec(layers),
              baseline.cnnInfersPerSec(layers));
}

TEST(GpuModel, EnergyFollowsTdp)
{
    GpuModel gpu{GpuParams{}};
    cnn::Resnet20 net(42);
    const auto layers = net.layerStats();
    EXPECT_NEAR(gpu.cnnJoulesPerInfer(layers) *
                    gpu.cnnInfersPerSec(layers),
                gpu.params().tdpWatts, 1e-6);
}

TEST(AppAccel, AesNiIsOneEngineOfTheCpuNiRate)
{
    AppAccelModels accel(CpuParams::i7_13700(), AnalogAccelParams{});
    CpuModel cpu(CpuParams::i7_13700());
    EXPECT_DOUBLE_EQ(accel.aesBlocksPerSec(),
                     cpu.aesNiBlocksPerSec() / 16.0);
}

TEST(AppAccel, CnnAcceleratorBeatsBaseline)
{
    // The dedicated CNN accelerator avoids the CPU round trips.
    AppAccelModels accel(CpuParams::i7_13700(), AnalogAccelParams{});
    const auto baseline = makeBaseline();
    cnn::Resnet20 net(42);
    const auto layers = net.layerStats();
    EXPECT_GT(accel.cnnInfersPerSec(layers),
              baseline.cnnInfersPerSec(layers));
}

TEST(AppAccel, LlmAcceleratorBeatsBaseline)
{
    AppAccelModels accel(CpuParams::i7_13700(), AnalogAccelParams{});
    const auto baseline = makeBaseline();
    llm::Encoder enc{llm::EncoderConfig{}};
    EXPECT_GT(accel.llmEncodesPerSec(enc.stats()),
              baseline.llmEncodesPerSec(enc.stats()));
}

TEST(LinkParams, BatchingAmortizesLatency)
{
    LinkParams batched;
    batched.batch = 256.0;
    LinkParams unbatched;   // default batch = 1 (synchronous offload)
    EXPECT_LT(batched.transferNs(16), unbatched.transferNs(16));
}

} // namespace
} // namespace baselines
} // namespace darth
